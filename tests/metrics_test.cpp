#include <gtest/gtest.h>

#include <sstream>

#include "metrics/bench_json.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace gecko::metrics {
namespace {

TEST(BenchJsonTest, ReportLeadsWithSchemaVersion)
{
    BenchReport report;
    report.figure = "fig99";
    std::string json = report.toJson();
    // schema_version is the first key so even a truncated record
    // identifies its format.
    EXPECT_EQ(json.rfind("{\"schema_version\":7,", 0), 0u) << json;
    EXPECT_EQ(jsonNumber(json, "schema_version"),
              static_cast<double>(kBenchSchemaVersion));
    // Version-3/4 provenance keys are always present.
    EXPECT_EQ(jsonNumber(json, "seed"), 0.0);
    EXPECT_EQ(jsonString(json, "defense_mode"), "static");
    EXPECT_EQ(jsonString(json, "exec_backend"), "block");
    // trace_out only appears when a trace was written.
    EXPECT_EQ(json.find("trace_out"), std::string::npos);
    report.traceOut = "out/trace.jsonl";
    EXPECT_EQ(jsonString(report.toJson(), "trace_out"),
              "out/trace.jsonl");
    // figure_data (v6) only appears when the bench supplied one, and
    // is spliced in raw (it is already JSON).
    EXPECT_EQ(json.find("figure_data"), std::string::npos);
    report.figureData = "{\"cells\":[1,2]}";
    EXPECT_NE(report.toJson().find("\"figure_data\":{\"cells\":[1,2]}"),
              std::string::npos);
}

TEST(BenchJsonTest, ReadersTolerateUnknownKeys)
{
    // A version-1 reader aggregating a version-2 record (or newer) must
    // skip keys it doesn't know and still find the ones it does — the
    // compatibility bench_all relies on.
    const std::string futureRecord =
        "{\"schema_version\":4,\"figure\":\"fig04\","
        "\"novel_key\":{\"nested\":[1,2]},\"threads\":4,"
        "\"trace_out\":\"t.jsonl\",\"sim_cycles\":123,"
        "\"status\":\"pass\"}";
    EXPECT_EQ(jsonNumber(futureRecord, "sim_cycles"), 123.0);
    EXPECT_EQ(jsonNumber(futureRecord, "threads"), 4.0);
    EXPECT_EQ(jsonString(futureRecord, "status"), "pass");
    EXPECT_EQ(jsonNumber(futureRecord, "schema_version"), 4.0);
    // Unknown keys read as absent, not as garbage.
    EXPECT_FALSE(jsonNumber(futureRecord, "wall_s").has_value());
    // Legacy records without the version key read as version 1.
    EXPECT_EQ(jsonNumber("{\"figure\":\"fig04\"}", "schema_version")
                  .value_or(1.0),
              1.0);
}

TEST(StatsTest, Means)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(minimum({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maximum({3, 1, 2}), 3.0);
}

TEST(StatsTest, SeriesArgExtrema)
{
    Series s{"t", {1, 2, 3, 4}, {5.0, 1.0, 9.0, 2.0}};
    EXPECT_EQ(argminY(s), 1u);
    EXPECT_EQ(argmaxY(s), 2u);
}

TEST(TableTest, AlignsColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
    // All rows share the same width up to the second column.
    auto col = out.find("value");
    auto row1 = out.find("1", out.find("x"));
    EXPECT_NE(col, std::string::npos);
    EXPECT_NE(row1, std::string::npos);
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPercent(0.413, 1), "41.3%");
    EXPECT_EQ(fmtMhz(27e6), "27 MHz");
    EXPECT_EQ(fmtMhz(16.5e6, 1), "16.5 MHz");
}

}  // namespace
}  // namespace gecko::metrics
