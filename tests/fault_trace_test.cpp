#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/corpus.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

/**
 * @file
 * Fault-campaign trace coverage: for every injector kind the event
 * trace must carry *ordered evidence* of the attack-defense story — the
 * injection event itself, followed by the defense reaction (CRC reject,
 * shadow-slot repair, save retry, rollback, degradation) the campaign's
 * aggregate counters only summarise.
 *
 * Also pins the replay guarantee at the trace level: a case re-run from
 * its corpus line traces byte-identically to the original run, so a
 * corpus entry is sufficient to reproduce not just the outcome but the
 * entire protocol timeline.
 */

namespace gecko {
namespace {

using fault::CaseSpec;
using fault::InjectorKind;
using trace::EventKind;

/** Trace one case (the golden-oracle warmup stays untraced). */
std::vector<trace::Event>
traceCase(const CaseSpec& spec, double budgetS)
{
    trace::Buffer buffer;
    {
        trace::BufferScope scope(&buffer);
        fault::runCase(spec, budgetS);
    }
    return buffer.events();
}

/** Expected evidence for one injector kind. */
struct Evidence {
    InjectorKind injector;
    const char* workload;
    /// Acceptable injection sites (`a` payload of the inject event).
    std::vector<std::uint64_t> sites;
    /// Acceptable defense kinds observed after the injection.
    std::vector<EventKind> defenses;
    /// Injection event carrying the site: kFaultInject for the storage
    /// family, kInstrFault for the instruction-stream family.
    EventKind injectKind = EventKind::kFaultInject;
};

const std::vector<Evidence>&
evidenceTable()
{
    using IK = InjectorKind;
    using trace::kSiteAckWord;
    using trace::kSiteJitWord;
    using trace::kSiteJitWriteFault;
    using trace::kSiteMonitorFault;
    using trace::kSiteSlotWord;
    using trace::kSiteStaleImage;
    using trace::kSiteStaleSlot;
    using trace::kSiteTornWrite;
    static const std::vector<Evidence> table = {
        {IK::kBitFlip, "crc16",
         {kSiteJitWord, kSiteSlotWord},
         {EventKind::kCrcReject, EventKind::kSlotRepair}},
        {IK::kMultiBitFlip, "crc16",
         {kSiteJitWord, kSiteSlotWord},
         {EventKind::kCrcReject, EventKind::kSlotRepair}},
        {IK::kTornWrite, "crc16",
         {kSiteTornWrite},
         {EventKind::kCrcReject, EventKind::kRollback}},
        {IK::kAckCorrupt, "crc16",
         {kSiteAckWord},
         {EventKind::kCrcReject, EventKind::kRollback}},
        {IK::kStaleImage, "crc16",
         {kSiteStaleImage, kSiteStaleSlot},
         {EventKind::kCrcReject, EventKind::kSlotRepair,
          EventKind::kRollback}},
        {IK::kMonitorStuck, "sensor_loop",
         {kSiteMonitorFault},
         {EventKind::kRollback, EventKind::kCrcReject,
          EventKind::kAttackDetected}},
        {IK::kMonitorOffset, "sensor_loop",
         {kSiteMonitorFault},
         {EventKind::kRollback, EventKind::kCrcReject,
          EventKind::kAttackDetected}},
        {IK::kBrownoutBurst, "sensor_loop",
         {kSiteJitWriteFault},
         {EventKind::kJitSaveRetry, EventKind::kJitRetriesExhausted,
          EventKind::kJitDisabled}},
        // Instruction-stream family: the glitch corrupts architectural
        // state, so the defense is the post-glitch checkpoint mask —
        // the poisoned interval never commits, and the next reboot
        // restores a pre-glitch image or rolls back to region entry.
        {IK::kInstrSkip, "crc16",
         {trace::kSiteInstrSkip},
         {EventKind::kJitRestore, EventKind::kRollback},
         EventKind::kInstrFault},
        {IK::kOpcodeCorrupt, "crc16",
         {trace::kSiteOpcodeCorrupt},
         {EventKind::kJitRestore, EventKind::kRollback},
         EventKind::kInstrFault},
        {IK::kOperandFlip, "sensor_loop",
         {trace::kSiteOperandFlip},
         {EventKind::kJitRestore, EventKind::kRollback},
         EventKind::kInstrFault},
    };
    return table;
}

/**
 * Does `events` contain a matching injection followed (strictly later)
 * by a matching defense?
 */
bool
hasOrderedEvidence(const std::vector<trace::Event>& events,
                   const Evidence& want, std::size_t* injectIdx,
                   std::size_t* defenseIdx)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].kind !=
            static_cast<std::uint16_t>(want.injectKind))
            continue;
        bool siteOk = false;
        for (std::uint64_t site : want.sites)
            siteOk = siteOk || events[i].a == site;
        if (!siteOk)
            continue;
        for (std::size_t j = i + 1; j < events.size(); ++j)
            for (EventKind d : want.defenses)
                if (events[j].kind == static_cast<std::uint16_t>(d)) {
                    *injectIdx = i;
                    *defenseIdx = j;
                    return true;
                }
    }
    return false;
}

TEST(FaultTraceTest, EveryInjectorLeavesOrderedDefenseEvidence)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "tracing compiled out (GECKO_TRACE=0)";

    for (const Evidence& want : evidenceTable()) {
        // Bounded deterministic seed search: injection sites derive
        // from the seed, and not every seed lands the fault somewhere
        // the GECKO defense has to act (e.g. a bit flip in a slot that
        // is never restored).  The first witness seed ends the search.
        bool found = false;
        std::uint64_t witnessSeed = 0;
        for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
            CaseSpec spec;
            spec.workload = want.workload;
            spec.scheme = compiler::Scheme::kGecko;
            spec.injector = want.injector;
            spec.seed = 0x9e3779b97f4a7c15ull * seed + seed;
            std::vector<trace::Event> events = traceCase(spec, 0.4);
            std::size_t i = 0, j = 0;
            if (hasOrderedEvidence(events, want, &i, &j)) {
                found = true;
                witnessSeed = spec.seed;
                EXPECT_LT(i, j);
            }
        }
        EXPECT_TRUE(found)
            << fault::injectorName(want.injector)
            << ": no seed in the search bound produced an injection "
               "event followed by a defense event";
        if (found)
            SUCCEED() << fault::injectorName(want.injector)
                      << " witnessed by seed " << witnessSeed;
    }
}

TEST(FaultTraceTest, CaseReplaysToAnIdenticalTraceFromItsCorpusLine)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "tracing compiled out (GECKO_TRACE=0)";

    // One machine-level and one sim-level representative.
    std::vector<CaseSpec> specs(2);
    specs[0].workload = "crc16";
    specs[0].scheme = compiler::Scheme::kGecko;
    specs[0].injector = InjectorKind::kBitFlip;
    specs[0].seed = 0xdecafbadull;
    specs[1].workload = "sensor_loop";
    specs[1].scheme = compiler::Scheme::kGecko;
    specs[1].injector = InjectorKind::kMonitorOffset;
    specs[1].seed = 0xfeedface1ull;

    for (const CaseSpec& spec : specs) {
        trace::Buffer original;
        fault::CaseResult result;
        {
            trace::BufferScope scope(&original);
            result = fault::runCase(spec, 0.4);
        }
        ASSERT_GT(original.size(), 0u)
            << fault::injectorName(spec.injector);

        // Round-trip through the corpus serialisation, then re-run
        // from the parsed line only.
        std::string line = fault::formatCorpusLine(result);
        fault::CorpusEntry entry;
        std::string err;
        ASSERT_TRUE(fault::parseCorpusLine(line, &entry, &err))
            << err << " in: " << line;
        ASSERT_EQ(entry.outcome, result.outcome);

        std::vector<trace::Event> replayed =
            traceCase(entry.spec, 0.4);
        EXPECT_TRUE(replayed == original.events())
            << fault::injectorName(spec.injector)
            << ": corpus-line replay traced differently ("
            << replayed.size() << " vs " << original.size()
            << " events)";
    }
}

}  // namespace
}  // namespace gecko
