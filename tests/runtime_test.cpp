#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/jit_checkpoint.hpp"
#include "workloads/workloads.hpp"

namespace gecko::runtime {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using sim::IoHub;
using sim::JitCheckpoint;
using sim::Machine;
using sim::Nvm;

struct Rig {
    CompiledProgram prog;
    Nvm nvm{16384};
    IoHub io;
    Machine machine;
    GeckoRuntime runtime;

    explicit Rig(Scheme scheme, const std::string& workload = "bitcnt")
        : prog(compiler::compile(workloads::build(workload), scheme)),
          machine(prog, nvm, io), runtime(prog, machine, nvm)
    {
        machine.setStagedIo(scheme != Scheme::kNvp);
        workloads::setupIo(workload, io);
    }

    /** Run `cycles` machine cycles. */
    void run(std::uint64_t cycles)
    {
        std::uint64_t consumed = 0;
        machine.run(cycles, &consumed);
        if (consumed > 0)
            runtime.noteExecutionSinceCheckpoint();
        runtime.onProgress();
    }

    /** Power failure without a checkpoint (hard death) + reboot. */
    void hardFailAndBoot()
    {
        machine.powerCycle();
        runtime.onBoot();
    }

    /** Graceful JIT checkpoint then reboot. */
    void gracefulFailAndBoot()
    {
        JitCheckpoint::checkpoint(machine, nvm, [](int) { return true; });
        runtime.noteJitCheckpointComplete();
        machine.powerCycle();
        runtime.onBoot();
    }
};

TEST(GeckoRuntimeTest, JitActivityPerScheme)
{
    EXPECT_TRUE(Rig(Scheme::kNvp).runtime.jitActive());
    EXPECT_FALSE(Rig(Scheme::kRatchet).runtime.jitActive());
    EXPECT_TRUE(Rig(Scheme::kGecko).runtime.jitActive());
}

TEST(GeckoRuntimeTest, GracefulCycleRollsForward)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();  // initial boot
    rig.run(500);
    std::uint32_t pc_before = rig.machine.pc();
    auto regs_before = rig.machine.regs();

    rig.gracefulFailAndBoot();

    EXPECT_EQ(rig.machine.pc(), pc_before);
    EXPECT_EQ(rig.machine.regs(), regs_before);
    EXPECT_TRUE(rig.runtime.jitActive());
    EXPECT_EQ(rig.runtime.stats.attackDetections, 0u);
    EXPECT_EQ(rig.runtime.stats.jitRestores, 2u);
    EXPECT_EQ(rig.runtime.stats.corruptedRestores, 0u);
}

TEST(GeckoRuntimeTest, AckDetectionDisablesJitOnHardDeath)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();
    rig.run(500);  // make progress; no checkpoint taken

    rig.hardFailAndBoot();

    // ACK did not change across the power cycle: attack assumed.
    EXPECT_GE(rig.runtime.stats.ackDetections, 1u);
    EXPECT_GE(rig.runtime.stats.attackDetections, 1u);
    EXPECT_FALSE(rig.runtime.jitActive());
    EXPECT_EQ(rig.runtime.stats.rollbacks, 1u);
    // Rolled back to the last committed region's entry.
    std::uint32_t region = rig.nvm.committedRegion;
    EXPECT_EQ(rig.machine.pc(), rig.prog.region(static_cast<int>(region))
                                    .entryIdx);
}

TEST(GeckoRuntimeTest, DosDetectionWithoutProgress)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();
    rig.run(2000);
    rig.gracefulFailAndBoot();  // healthy cycle

    // Now a churn cycle: checkpoint again immediately with no progress.
    JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                              [](int) { return true; });
    rig.runtime.noteJitCheckpointComplete();
    rig.machine.powerCycle();
    rig.runtime.onBoot();

    EXPECT_GE(rig.runtime.stats.dosDetections, 1u);
    EXPECT_FALSE(rig.runtime.jitActive());
}

TEST(GeckoRuntimeTest, ReenableAfterQuietFirstRegion)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();
    rig.run(500);
    rig.hardFailAndBoot();  // attack detected, JIT off
    ASSERT_FALSE(rig.runtime.jitActive());

    // Next boot: no backup signal during the first region.
    rig.hardFailAndBoot();
    rig.run(5000);  // completes at least one region quietly
    EXPECT_TRUE(rig.runtime.jitActive());
    EXPECT_GE(rig.runtime.stats.jitReenables, 1u);
}

TEST(GeckoRuntimeTest, NoReenableWhileSignalsKeepComing)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();
    rig.run(500);
    rig.hardFailAndBoot();
    ASSERT_FALSE(rig.runtime.jitActive());

    rig.hardFailAndBoot();
    rig.runtime.onBackupSignal();  // the (ignored) monitor fires again
    rig.run(5000);
    EXPECT_FALSE(rig.runtime.jitActive());
    EXPECT_EQ(rig.runtime.stats.jitReenables, 0u);
}

TEST(GeckoRuntimeTest, RatchetAlwaysRollsBack)
{
    Rig rig(Scheme::kRatchet);
    rig.runtime.onBoot();
    rig.run(500);
    rig.hardFailAndBoot();
    EXPECT_EQ(rig.runtime.stats.rollbacks, 2u);  // initial boot + failure
    EXPECT_EQ(rig.runtime.stats.jitRestores, 0u);
}

TEST(GeckoRuntimeTest, NvpRestoresStaleImageAndCounts)
{
    Rig rig(Scheme::kNvp);
    rig.runtime.onBoot();
    rig.run(500);
    rig.hardFailAndBoot();  // no checkpoint: restores the boot image
    EXPECT_GE(rig.runtime.stats.corruptedRestores, 1u);
    EXPECT_TRUE(rig.runtime.jitActive());  // NVP has no defence
}

TEST(GeckoRuntimeTest, TornImageRejectedAtEveryTruncationOffset)
{
    // Every truncation offset of the 28-word image must fail the
    // guarded-restore check: offsets before the epoch word leave a
    // consumed (stale) epoch, offsets before the CRC word leave a stale
    // CRC over mixed contents, and an offset at the ACK word leaves a
    // CRC that folded an ACK value never written.
    for (int cut = 0; cut < static_cast<int>(Nvm::kJitWords); ++cut) {
        Rig rig(Scheme::kGecko);
        // Detectors off: the torn image must be caught by the CRC/epoch
        // guard itself, not by the ACK/timer attack detectors.
        rig.runtime.setDetectors(false, false);
        rig.runtime.onBoot();
        rig.run(500);
        rig.gracefulFailAndBoot();  // last-known-good state
        rig.run(500);

        int n = 0;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [&](int) { return n++ < cut; });
        rig.machine.powerCycle();
        rig.runtime.onBoot();

        EXPECT_EQ(rig.runtime.stats.crcRejects, 1u) << "cut=" << cut;
        EXPECT_GE(rig.runtime.stats.corruptedRestores, 1u) << "cut=" << cut;
        // The fallback rolled back to the last committed region: pc at
        // its entry, live-ins restored from the guarded slots.
        const auto& info =
            rig.prog.region(static_cast<int>(rig.nvm.committedRegion));
        EXPECT_EQ(rig.machine.pc(), info.entryIdx) << "cut=" << cut;
        for (const auto& ck : info.ckpts) {
            EXPECT_EQ(rig.machine.regs()[ck.reg],
                      rig.nvm.slots[ck.reg]
                                   [static_cast<std::size_t>(ck.slot)])
                << "cut=" << cut << " r" << static_cast<int>(ck.reg);
        }
    }
}

TEST(GeckoRuntimeTest, PersistentIntegrityFailuresDegradeToRollback)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.setDetectors(false, false);
    rig.runtime.onBoot();
    for (int i = 0; i < GeckoRuntime::kMaxIntegrityFailures; ++i) {
        ASSERT_TRUE(rig.runtime.jitActive()) << "boot " << i;
        rig.run(500);
        int n = 0;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [&](int) { return n++ < 5; });
        rig.machine.powerCycle();
        rig.runtime.onBoot();
    }
    // Three consecutive CRC rejects: graceful degradation to the
    // JIT-disabled rollback mode, with the re-enable probe armed.
    EXPECT_EQ(rig.runtime.stats.crcRejects,
              static_cast<std::uint64_t>(
                  GeckoRuntime::kMaxIntegrityFailures));
    EXPECT_EQ(rig.runtime.stats.integrityDegradations, 1u);
    EXPECT_FALSE(rig.runtime.jitActive());
}

TEST(GeckoRuntimeTest, ValidCheckpointResetsIntegrityFailureStreak)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.setDetectors(false, false);
    rig.runtime.onBoot();
    for (int i = 0; i < 4; ++i) {
        rig.run(500);
        int n = 0;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [&](int) { return n++ < 5; });
        rig.machine.powerCycle();
        rig.runtime.onBoot();  // CRC reject
        rig.run(500);
        rig.gracefulFailAndBoot();  // valid restore resets the streak
    }
    EXPECT_EQ(rig.runtime.stats.crcRejects, 4u);
    EXPECT_EQ(rig.runtime.stats.integrityDegradations, 0u);
    EXPECT_TRUE(rig.runtime.jitActive());
}

TEST(GeckoRuntimeTest, RollbackRestoresLiveInsFromSlots)
{
    Rig rig(Scheme::kGecko);
    rig.runtime.onBoot();
    // Run long enough to commit several regions mid-loop.
    rig.run(3000);
    ASSERT_GT(rig.nvm.commitCount, 1u);

    // Capture the committed region and its restore table.
    std::uint32_t region = rig.nvm.committedRegion;
    const auto& info = rig.prog.region(static_cast<int>(region));

    rig.hardFailAndBoot();
    for (const auto& ck : info.ckpts) {
        EXPECT_EQ(rig.machine.regs()[ck.reg],
                  rig.nvm.slots[ck.reg][static_cast<std::size_t>(ck.slot)])
            << "r" << static_cast<int>(ck.reg);
    }
    EXPECT_EQ(rig.machine.pc(), info.entryIdx);
}

}  // namespace
}  // namespace gecko::runtime
