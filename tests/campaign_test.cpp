#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "campaign/aggregate.hpp"
#include "campaign/archive.hpp"
#include "campaign/engine.hpp"
#include "campaign/manifest.hpp"
#include "campaign/snapshot.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "exp/rng.hpp"
#include "exp/thread_pool.hpp"
#include "fault/injectors.hpp"
#include "fault/spec.hpp"
#include "metrics/bench_json.hpp"
#include "sim/intermittent_sim.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * The crash-tolerant campaign layer (DESIGN.md §13): archive container
 * integrity, bit-exact simulator snapshot/resume under hostile
 * environments and every injector family, manifest recovery semantics
 * (torn tails included), the durable JSONL writer, and the engine's
 * end-to-end oracle — interrupted campaigns resume to the byte-
 * identical aggregate of an uninterrupted run, across thread counts
 * and execution backends.
 */

namespace gecko {
namespace {

namespace fs = std::filesystem;
using campaign::Archive;
using campaign::SnapshotError;
using compiler::Scheme;

/** Fresh scratch dir per test, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() /
                ("gecko_campaign_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

// ---------------------------------------------------------------------
// Archive container
// ---------------------------------------------------------------------

TEST(ArchiveTest, PrimitivesRoundTrip)
{
    Archive save = Archive::saver();
    std::uint8_t u8 = 0xab;
    std::uint16_t u16 = 0xbeef;
    std::uint32_t u32 = 0xdeadbeefu;
    std::uint64_t u64 = 0x0123456789abcdefull;
    std::int32_t i32 = -123456;
    double f64 = -0.0625;
    bool b = true;
    std::array<std::uint32_t, 3> arr{1, 2, 3};
    std::vector<std::uint32_t> vec{9, 8, 7, 6};
    save.section("test");
    save.u8(u8);
    save.u16(u16);
    save.u32(u32);
    save.u64(u64);
    save.i32(i32);
    save.f64(f64);
    save.boolean(b);
    save.u32Array(arr);
    save.u32FixedVector(vec, "vec");
    save.check(42, "the answer");
    auto blob = campaign::sealContainer(7, save.takePayload());

    Archive load = Archive::loader(campaign::openContainer(blob, 7));
    std::uint8_t r8 = 0;
    std::uint16_t r16 = 0;
    std::uint32_t r32 = 0;
    std::uint64_t r64 = 0;
    std::int32_t ri32 = 0;
    double rf64 = 0;
    bool rb = false;
    std::array<std::uint32_t, 3> rarr{};
    std::vector<std::uint32_t> rvec(4, 0);
    load.section("test");
    load.u8(r8);
    load.u16(r16);
    load.u32(r32);
    load.u64(r64);
    load.i32(ri32);
    load.f64(rf64);
    load.boolean(rb);
    load.u32Array(rarr);
    load.u32FixedVector(rvec, "vec");
    load.check(42, "the answer");
    load.finishLoad();
    EXPECT_EQ(r8, u8);
    EXPECT_EQ(r16, u16);
    EXPECT_EQ(r32, u32);
    EXPECT_EQ(r64, u64);
    EXPECT_EQ(ri32, i32);
    EXPECT_EQ(rf64, f64);
    EXPECT_EQ(rb, b);
    EXPECT_EQ(rarr, arr);
    EXPECT_EQ(rvec, vec);
}

TEST(ArchiveTest, GuardsRejectDamage)
{
    Archive save = Archive::saver();
    save.section("sec");
    std::uint64_t v = 77;
    save.u64(v);
    auto blob = campaign::sealContainer(3, save.takePayload());

    // Wrong container version.
    EXPECT_THROW(campaign::openContainer(blob, 4), SnapshotError);
    // Bad magic.
    {
        auto bad = blob;
        bad[0] ^= 0xff;
        EXPECT_THROW(campaign::openContainer(bad, 3), SnapshotError);
    }
    // Payload bit-flip must fail the CRC.
    {
        auto bad = blob;
        bad[bad.size() / 2] ^= 0x01;
        EXPECT_THROW(campaign::openContainer(bad, 3), SnapshotError);
    }
    // Truncation at every byte boundary must never be accepted.
    for (std::size_t n = 0; n < blob.size(); ++n) {
        std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + n);
        EXPECT_THROW(campaign::openContainer(cut, 3), SnapshotError)
            << "truncated to " << n << " bytes";
    }
    // Wrong section tag.
    {
        Archive load =
            Archive::loader(campaign::openContainer(blob, 3));
        EXPECT_THROW(load.section("other"), SnapshotError);
    }
    // check() mismatch.
    {
        Archive load =
            Archive::loader(campaign::openContainer(blob, 3));
        load.section("sec");
        std::uint64_t r = 0;
        load.u64(r);
        EXPECT_THROW(load.check(5, "guard"), SnapshotError);
    }
    // Trailing bytes (payload longer than the reader consumed).
    {
        Archive load =
            Archive::loader(campaign::openContainer(blob, 3));
        load.section("sec");
        EXPECT_THROW(load.finishLoad(), SnapshotError);
    }
}

// ---------------------------------------------------------------------
// Simulator snapshot/resume: bit-exact lockstep under every injector
// family, across all three execution backends.
// ---------------------------------------------------------------------

enum class Injector {
    kNone,
    kEmiSchedule,
    kBrownout,
    kMonitorFault,
    kJitWriteFault,
    kDefenseEmi,
    kCorruptJitWord,
    kCorruptSlotWord,
    kCorruptAckWord,
    kSubstituteJitImage,
    kStaleSlot,
};

const Injector kAllInjectors[] = {
    Injector::kNone,           Injector::kEmiSchedule,
    Injector::kBrownout,       Injector::kMonitorFault,
    Injector::kJitWriteFault,  Injector::kDefenseEmi,
    Injector::kCorruptJitWord, Injector::kCorruptSlotWord,
    Injector::kCorruptAckWord, Injector::kSubstituteJitImage,
    Injector::kStaleSlot,
};

/** Everything observable about a finished run. */
struct SnapObservation {
    sim::ExecStats exec;
    std::array<std::uint32_t, 16> regs{};
    std::vector<std::uint32_t> out;
    std::vector<std::uint32_t> memory;
    std::vector<trace::Event> events;
    double nowS = 0.0;
    std::uint64_t reboots = 0;
    std::uint64_t ckptComplete = 0;
    std::uint64_t ckptTorn = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t crcRejects = 0;
};

constexpr int kSlices = 6;
constexpr double kSliceS = 0.003;

/** One fully-owned simulation environment, rebuilt for restores. */
struct SnapEnv {
    std::unique_ptr<compiler::CompiledProgram> compiled;
    sim::IoHub io;
    std::unique_ptr<energy::Harvester> supply;
    std::unique_ptr<sim::IntermittentSim> simulation;
    std::unique_ptr<attack::RemoteRig> rig;
    std::unique_ptr<attack::EmiSource> source;
    std::unique_ptr<attack::AttackSchedule> schedule;
};

/** Deterministic build of the environment for (seed, injector). */
void
buildEnv(SnapEnv& env, std::uint32_t seed, Injector injector)
{
    env.compiled = std::make_unique<compiler::CompiledProgram>(
        compiler::compile(workloads::build("sensor_loop"),
                          Scheme::kGecko));
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 4096;
    cfg.jitRamWords = 8;
    cfg.bootOverheadCycles = 1000;
    cfg.monitorSeed = seed;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    if (injector == Injector::kDefenseEmi)
        cfg.defense.enabled = true;

    workloads::setupIo("sensor_loop", env.io);
    if (injector == Injector::kBrownout) {
        static const energy::ConstantHarvester base(3.3, 5.0);
        env.supply = std::make_unique<fault::BrownoutHarvester>(
            base, 0.004, 0.0015, seed, kSlices * kSliceS);
    } else {
        env.supply = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);
    }
    env.simulation = std::make_unique<sim::IntermittentSim>(
        *env.compiled, dev, cfg, *env.supply, env.io);

    const bool wantEmi = injector == Injector::kEmiSchedule ||
                         injector == Injector::kDefenseEmi;
    if (wantEmi) {
        exp::Rng rng(exp::mixSeed(seed, 0xe317));
        double freqHz = 1e6 * (1 + rng.pick(300));
        double powerDbm = 25.0 + rng.pick(16);
        std::vector<attack::AttackWindow> windows;
        double t = 0.001 * (1 + rng.pick(3));
        for (int i = 0; i < 3; ++i) {
            double on = 0.001 * (1 + rng.pick(4));
            windows.push_back({t, t + on, freqHz, powerDbm});
            t += on + 0.001 * (1 + rng.pick(3));
        }
        env.rig = std::make_unique<attack::RemoteRig>(
            dev, cfg.monitorKind, 0.5);
        env.source =
            std::make_unique<attack::EmiSource>(*env.rig, freqHz, powerDbm);
        env.schedule =
            std::make_unique<attack::AttackSchedule>(std::move(windows));
        env.simulation->setEmiSource(env.source.get());
        env.simulation->setAttackSchedule(env.schedule.get());
    }
    if (injector == Injector::kMonitorFault) {
        // Deterministic sensing-path offset fault active in a band.
        env.simulation->setMonitorFault([](double v, double t) {
            return (t > 0.004 && t < 0.009) ? v - 0.25 : v;
        });
    }
    if (injector == Injector::kJitWriteFault) {
        // Transient per-word write failures on a fixed stride.
        env.simulation->setJitWriteFault(
            [](int word) { return word % 13 == 5; });
    }
}

/**
 * NVM disturbance applied at a slice boundary — identically in the
 * reference and the snapshotted run (the mutation itself is part of
 * the scenario, not of the crash being simulated).
 */
void
boundaryAction(SnapEnv& env, std::uint32_t seed, Injector injector,
               int boundary,
               std::array<std::uint32_t, sim::Nvm::kJitWords>& captured)
{
    sim::Nvm& nvm = env.simulation->nvm();
    if (boundary == 2 && injector == Injector::kSubstituteJitImage)
        captured = nvm.jit;
    if (boundary != 4)
        return;
    exp::Rng rng(exp::mixSeed(seed, 0xfa017));
    switch (injector) {
        case Injector::kCorruptJitWord:
            fault::corruptJitWord(nvm, 2, rng);
            break;
        case Injector::kCorruptSlotWord:
            fault::corruptSlotWord(nvm, 2, rng);
            break;
        case Injector::kCorruptAckWord:
            fault::corruptAckWord(nvm, rng);
            break;
        case Injector::kSubstituteJitImage:
            fault::substituteJitImage(nvm, captured);
            break;
        case Injector::kStaleSlot:
            fault::substituteStaleSlot(nvm, 1, 0,
                                       0xdead0000u | rng.pick(0xffff));
            break;
        default:
            break;
    }
}

SnapObservation
observe(SnapEnv& env, std::vector<trace::Event> events)
{
    SnapObservation obs;
    obs.exec = env.simulation->machine().stats;
    obs.regs = env.simulation->machine().regs();
    obs.out = env.io.output(0).values();
    obs.memory = env.simulation->nvm().data();
    obs.events = std::move(events);
    obs.nowS = env.simulation->now();
    obs.reboots = env.simulation->stats.reboots;
    obs.ckptComplete = env.simulation->stats.jitCheckpointsComplete;
    obs.ckptTorn = env.simulation->stats.jitCheckpointsTorn;
    obs.rollbacks = env.simulation->geckoRuntime().stats.rollbacks;
    obs.crcRejects = env.simulation->geckoRuntime().stats.crcRejects;
    return obs;
}

/**
 * Run the scenario slice-by-slice; when `snapshotAt` >= 0, serialize
 * at that boundary, tear the whole environment down, rebuild it from
 * scratch, restore, and finish — the restored run must be bit-exact.
 */
SnapObservation
runSliced(std::uint32_t seed, Injector injector, sim::ExecBackend backend,
          int snapshotAt)
{
    auto env = std::make_unique<SnapEnv>();
    buildEnv(*env, seed, injector);
    env->simulation->machine().setExecBackend(backend);
    std::array<std::uint32_t, sim::Nvm::kJitWords> captured{};

    auto buffer = std::make_unique<trace::Buffer>();
    auto scope = std::make_unique<trace::BufferScope>(buffer.get());
    for (int k = 0; k < kSlices; ++k) {
        env->simulation->run(kSliceS);
        boundaryAction(*env, seed, injector, k + 1, captured);
        if (k + 1 == snapshotAt) {
            std::vector<std::uint8_t> blob = campaign::saveSimSnapshot(
                *env->simulation, env->io, buffer.get());
            // Full teardown: nothing may survive but the blob (and the
            // harness-held `captured` image, which is scenario input).
            scope.reset();
            buffer.reset();
            env = std::make_unique<SnapEnv>();
            buildEnv(*env, seed, injector);
            env->simulation->machine().setExecBackend(backend);
            buffer = std::make_unique<trace::Buffer>();
            campaign::restoreSimSnapshot(*env->simulation, env->io, blob,
                                         buffer.get());
            scope = std::make_unique<trace::BufferScope>(buffer.get());
        }
    }
    std::vector<trace::Event> events = buffer->events();
    scope.reset();
    return observe(*env, std::move(events));
}

void
expectSame(const SnapObservation& a, const SnapObservation& b,
           const std::string& what)
{
    EXPECT_TRUE(a.exec == b.exec) << what << ": ExecStats diverged";
    EXPECT_EQ(a.regs, b.regs) << what;
    EXPECT_EQ(a.out, b.out) << what;
    EXPECT_EQ(a.memory, b.memory) << what;
    EXPECT_EQ(a.nowS, b.nowS) << what;
    EXPECT_EQ(a.reboots, b.reboots) << what;
    EXPECT_EQ(a.ckptComplete, b.ckptComplete) << what;
    EXPECT_EQ(a.ckptTorn, b.ckptTorn) << what;
    EXPECT_EQ(a.rollbacks, b.rollbacks) << what;
    EXPECT_EQ(a.crcRejects, b.crcRejects) << what;
    ASSERT_EQ(a.events.size(), b.events.size())
        << what << ": trace stream length diverged";
    EXPECT_TRUE(a.events == b.events) << what << ": trace diverged";
}

class SnapshotLockstepTest
    : public ::testing::TestWithParam<sim::ExecBackend>
{
};

TEST_P(SnapshotLockstepTest, RestoreMatchesUninterruptedUnderAllInjectors)
{
    const sim::ExecBackend backend = GetParam();
    for (Injector injector : kAllInjectors) {
        const std::uint32_t seed = 11 + static_cast<std::uint32_t>(
                                            injector) * 7;
        SnapObservation ref = runSliced(seed, injector, backend, -1);
        ASSERT_GT(ref.exec.cycles, 0u);
        // Snapshot early, mid, and right after the NVM disturbance.
        for (int at : {1, 3, 5}) {
            SnapObservation snap = runSliced(seed, injector, backend, at);
            expectSame(ref, snap,
                       "injector " +
                           std::to_string(static_cast<int>(injector)) +
                           " snapshot@" + std::to_string(at));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, SnapshotLockstepTest,
                         ::testing::Values(sim::ExecBackend::kStep,
                                           sim::ExecBackend::kFast,
                                           sim::ExecBackend::kBlock),
                         [](const auto& info) {
                             return std::string(
                                 sim::execBackendName(info.param));
                         });

TEST(SnapshotTest, FingerprintMismatchRejectsRestore)
{
    SnapEnv env;
    buildEnv(env, 5, Injector::kNone);
    env.simulation->run(kSliceS);
    auto blob = campaign::saveSimSnapshot(*env.simulation, env.io, nullptr);

    // Same program, differently sized NVM: the fingerprint must refuse.
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      Scheme::kGecko);
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 8192;  // differs
    cfg.jitRamWords = 8;
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    sim::IntermittentSim other(compiled, dev, cfg, supply, io);
    EXPECT_THROW(campaign::restoreSimSnapshot(other, io, blob, nullptr),
                 SnapshotError);
}

TEST(SnapshotTest, FileRoundTripAndMissingFile)
{
    TempDir dir("snapfile");
    const std::string path = dir.str() + "/snap.bin";
    EXPECT_TRUE(campaign::readSnapshotFile(path).empty());
    std::vector<std::uint8_t> blob{1, 2, 3, 250, 251};
    ASSERT_TRUE(campaign::writeSnapshotFile(path, blob));
    EXPECT_EQ(campaign::readSnapshotFile(path), blob);
}

// ---------------------------------------------------------------------
// Manifest journal
// ---------------------------------------------------------------------

TEST(ManifestTest, JournalRoundTripAndLatestWins)
{
    TempDir dir("manifest");
    const std::string path = dir.str() + "/manifest.jsonl";
    {
        campaign::ManifestWriter w(path, 4);
        ASSERT_TRUE(w.ok());
        ASSERT_TRUE(w.header(10, 0xfeedfacecafebeefull,
                             0xabcdef0123456789ull));
        w.append({3, campaign::JobState::kRunning, 0, 0, ""});
        w.append({3, campaign::JobState::kDone, 0, 4, ""});
        w.append({7, campaign::JobState::kRunning, 0, 0, ""});
        w.append({7, campaign::JobState::kFailed, 0, 0, "boom"});
        w.append({7, campaign::JobState::kRunning, 1, 0, ""});
        ASSERT_TRUE(w.sync());
    }
    campaign::ManifestRecovery rec = campaign::readManifest(path);
    EXPECT_TRUE(rec.hasHeader);
    EXPECT_EQ(rec.totalJobs, 10u);
    // Full-width u64s must survive the journal (they travel as quoted
    // strings to dodge double-precision truncation).
    EXPECT_EQ(rec.configHash, 0xfeedfacecafebeefull);
    EXPECT_EQ(rec.seed, 0xabcdef0123456789ull);
    EXPECT_EQ(rec.maxJob, 7u);
    EXPECT_EQ(rec.stateOf(3), campaign::JobState::kDone);
    EXPECT_EQ(rec.stateOf(7), campaign::JobState::kRunning);
    EXPECT_EQ(rec.latest.at(7).attempt, 1u);
    EXPECT_EQ(rec.stateOf(9), campaign::JobState::kPending);
    EXPECT_EQ(rec.tornLines, 0u);
}

TEST(ManifestTest, TornTailAndGarbageAreCountedNotFatal)
{
    TempDir dir("torn");
    const std::string path = dir.str() + "/manifest.jsonl";
    {
        campaign::ManifestWriter w(path, 1);
        w.header(4, 1, 2);
        w.append({0, campaign::JobState::kDone, 0, 1, ""});
        w.append({1, campaign::JobState::kRunning, 0, 0, ""});
    }
    {
        // Crash damage: a garbage line and an unterminated tail.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"job\":2,\"state\":\"exploded\",\"attempt\":0,"
               "\"slices\":0}\n";
        out << "{\"job\":3,\"state\":\"run";  // no newline
    }
    campaign::ManifestRecovery rec = campaign::readManifest(path);
    EXPECT_TRUE(rec.hasHeader);
    EXPECT_EQ(rec.stateOf(0), campaign::JobState::kDone);
    EXPECT_EQ(rec.stateOf(1), campaign::JobState::kRunning);
    EXPECT_EQ(rec.stateOf(2), campaign::JobState::kPending);
    EXPECT_EQ(rec.stateOf(3), campaign::JobState::kPending);
    EXPECT_EQ(rec.tornLines, 2u);
    EXPECT_EQ(campaign::readManifest(dir.str() + "/missing.jsonl")
                  .hasHeader,
              false);
}

// ---------------------------------------------------------------------
// Durable JSONL writer
// ---------------------------------------------------------------------

TEST(JsonlWriterTest, EveryRecordLandsTerminated)
{
    TempDir dir("jsonl");
    const std::string path = dir.str() + "/out.jsonl";
    {
        metrics::JsonlWriter w(path, /*append=*/false, /*syncEvery=*/8);
        ASSERT_TRUE(w.ok());
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(w.append("{\"i\":" + std::to_string(i) + "}"));
        EXPECT_EQ(w.records(), 100u);
        EXPECT_GE(w.syncs(), 100u / 8);
        ASSERT_TRUE(w.sync());
    }
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
    int lines = 0;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        auto i = metrics::jsonNumber(line, "i");
        ASSERT_TRUE(i.has_value()) << "torn record: " << line;
        EXPECT_EQ(static_cast<int>(*i), lines);
        ++lines;
    }
    EXPECT_EQ(lines, 100);
}

TEST(JsonlWriterTest, AppendModeExtendsExistingJournal)
{
    TempDir dir("jsonl2");
    const std::string path = dir.str() + "/out.jsonl";
    {
        metrics::JsonlWriter w(path, false, 0);
        w.append("{\"i\":0}");
    }
    {
        metrics::JsonlWriter w(path, true, 0);
        w.append("{\"i\":1}");
    }
    std::ifstream in(path);
    std::string l1, l2;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_EQ(l1, "{\"i\":0}");
    EXPECT_EQ(l2, "{\"i\":1}");
}

// ---------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------

TEST(AggregateTest, RoundTripDedupAndDeterministicRender)
{
    campaign::JobResult a;
    a.job = 4;
    a.group = "w/S/clean";
    a.slices = 2;
    a.cycles = 1000;
    a.completions = 3;
    campaign::JobResult b = a;
    b.job = 9;
    b.group = "a/S/tone";
    b.cycles = 500;

    auto parsed = campaign::JobResult::fromJsonl(a.toJsonl());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->job, a.job);
    EXPECT_EQ(parsed->group, a.group);
    EXPECT_EQ(parsed->cycles, a.cycles);
    EXPECT_FALSE(
        campaign::JobResult::fromJsonl("{\"job\":1,\"group\":\"x\"")
            .has_value());

    campaign::Aggregator agg(16);
    EXPECT_TRUE(agg.add(a));
    EXPECT_TRUE(agg.add(b));
    // A crash between the result write and the manifest `done` makes
    // the re-run append an identical line: it must not double-count.
    EXPECT_FALSE(agg.add(a));
    EXPECT_EQ(agg.jobCount(), 2u);
    std::string json = agg.toJson(16, 111, 222);
    // Groups render in key order regardless of insertion order.
    EXPECT_LT(json.find("a/S/tone"), json.find("w/S/clean"));
    EXPECT_NE(json.find("\"jobs_done\":2"), std::string::npos);

    campaign::Aggregator again(16);
    EXPECT_TRUE(again.add(b));
    EXPECT_TRUE(again.add(a));
    EXPECT_EQ(again.toJson(16, 111, 222), json);
}

// ---------------------------------------------------------------------
// Engine: end-to-end crash-tolerance oracles (in-process)
// ---------------------------------------------------------------------

campaign::CampaignSpace
smallSpace()
{
    campaign::CampaignSpace space;
    space.workloads = {"sensor_loop"};
    space.schemes = {Scheme::kGecko, Scheme::kNvp};
    campaign::Scenario clean;
    clean.kind = campaign::ScenarioKind::kClean;
    clean.freqHz = 0.0;
    clean.powerDbm = 0.0;
    campaign::Scenario tone;
    tone.kind = campaign::ScenarioKind::kTone;
    space.scenarios = {clean, tone};
    space.seeds = {1, 2};
    space.simSeconds = 0.008;
    space.sliceSimSeconds = 0.002;
    return space;
}

campaign::EngineConfig
engineConfig(const std::string& dir)
{
    campaign::EngineConfig config;
    config.dir = dir;
    config.space = smallSpace();
    config.seed = 99;
    config.retryBackoffMs = 0;
    return config;
}

TEST(EngineTest, CompletesAndAggregateIsThreadInvariant)
{
    TempDir d1("eng1"), d8("eng8");
    exp::ThreadPool pool1(1), pool8(8);
    auto r1 = campaign::runCampaign(engineConfig(d1.str()), pool1);
    auto r8 = campaign::runCampaign(engineConfig(d8.str()), pool8);
    EXPECT_TRUE(r1.complete);
    EXPECT_TRUE(r8.complete);
    EXPECT_EQ(r1.jobsDone, r1.jobsTotal);
    EXPECT_EQ(r1.aggregateJson, r8.aggregateJson);
    // aggregate.json on disk matches the in-memory render.
    std::ifstream in(d1.str() + "/aggregate.json", std::ios::binary);
    std::string onDisk((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(onDisk, r1.aggregateJson);
    // Re-running a complete campaign is a cheap no-op with the same
    // aggregate.
    auto again = campaign::runCampaign(engineConfig(d1.str()), pool1);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.jobsRequeued, 0u);
    EXPECT_EQ(again.aggregateJson, r1.aggregateJson);
}

TEST(EngineTest, MidJobInterruptSnapshotsAndResumesByteIdentical)
{
    TempDir ref("intref"), cut("intcut");
    exp::ThreadPool pool(1);
    auto expected = campaign::runCampaign(engineConfig(ref.str()), pool);

    // Arm the stop flag once job 2 starts; a couple of slice checks
    // later the engine must snapshot mid-job and drain.
    std::atomic<bool> armed{false};
    std::atomic<int> checks{0};
    auto config = engineConfig(cut.str());
    config.beforeJob = [&](std::uint64_t job) {
        if (job == 2)
            armed.store(true);
    };
    config.stopRequested = [&] {
        return armed.load() && ++checks > 2;
    };
    auto interrupted = campaign::runCampaign(config, pool);
    EXPECT_FALSE(interrupted.complete);
    EXPECT_LT(interrupted.jobsDone, interrupted.jobsTotal);
    EXPECT_TRUE(fs::exists(cut.str() + "/snap_2.bin"));

    auto resumed =
        campaign::runCampaign(engineConfig(cut.str()), pool);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.resumedFromSnapshot, 1u);
    EXPECT_GE(resumed.jobsRequeued, 1u);
    EXPECT_EQ(resumed.aggregateJson, expected.aggregateJson);
    EXPECT_FALSE(fs::exists(cut.str() + "/snap_2.bin"));
}

TEST(EngineTest, BoundedProgressChunksConvergeByteIdentical)
{
    TempDir ref("chunkref"), chunk("chunk");
    exp::ThreadPool pool(3);
    auto expected = campaign::runCampaign(engineConfig(ref.str()), pool);

    auto config = engineConfig(chunk.str());
    config.maxJobsThisRun = 3;
    campaign::EngineReport r;
    int runs = 0;
    do {
        r = campaign::runCampaign(config, pool);
        ASSERT_LT(++runs, 20) << "campaign failed to converge";
    } while (!r.complete);
    EXPECT_EQ(r.aggregateJson, expected.aggregateJson);
}

TEST(EngineTest, PoisonJobsAreQuarantinedAndCampaignCompletes)
{
    TempDir dir("poison");
    exp::ThreadPool pool(2);
    auto config = engineConfig(dir.str());
    config.space.workloads = {"sensor_loop", "__poison__"};
    config.maxAttempts = 2;
    auto report = campaign::runCampaign(config, pool);
    EXPECT_TRUE(report.complete);
    // Half the job space names the unknown workload: every attempt
    // throws, the retry budget drains, and the jobs land in quarantine
    // without taking the campaign down.
    EXPECT_EQ(report.jobsQuarantined, report.jobsTotal / 2);
    EXPECT_EQ(report.jobsDone, report.jobsTotal / 2);
    EXPECT_EQ(report.attemptsFailed, report.jobsQuarantined * 2);
    EXPECT_EQ(report.aggregateJson.find("__poison__"), std::string::npos);

    // Quarantine is durable: a resume re-queues nothing.
    auto again = campaign::runCampaign(config, pool);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.jobsRequeued, 0u);
    EXPECT_EQ(again.attemptsFailed, 0u);
}

TEST(EngineTest, ShardDeathSpillsWorkAndDegradesGracefully)
{
    TempDir ref("sdref"), dir("sdeath");
    exp::ThreadPool pool(2);
    auto expected = campaign::runCampaign(engineConfig(ref.str()), pool);

    std::atomic<bool> thrown{false};
    auto config = engineConfig(dir.str());
    config.shardSize = 1;
    config.beforeJob = [&](std::uint64_t job) {
        if (job == 1 && !thrown.exchange(true))
            throw std::runtime_error("shard infrastructure failure");
    };
    auto report = campaign::runCampaign(config, pool);
    EXPECT_EQ(report.shardDeaths, 1u);
    if (!report.complete) {
        // The spilled job can land after the surviving shards drained
        // the queue; one resume must finish it.
        report = campaign::runCampaign(engineConfig(dir.str()), pool);
    }
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.aggregateJson, expected.aggregateJson);
}

TEST(EngineTest, RefusesForeignManifest)
{
    TempDir dir("foreign");
    exp::ThreadPool pool(1);
    auto config = engineConfig(dir.str());
    config.maxJobsThisRun = 2;  // leave the campaign incomplete
    campaign::runCampaign(config, pool);

    auto other = engineConfig(dir.str());
    other.space.seeds = {5, 6, 7};  // different job space
    EXPECT_THROW(campaign::runCampaign(other, pool),
                 std::runtime_error);
    auto reseeded = engineConfig(dir.str());
    reseeded.seed = 100;  // different campaign seed
    EXPECT_THROW(campaign::runCampaign(reseeded, pool),
                 std::runtime_error);
}

TEST(EngineTest, TornJournalTailsAreAbsorbedOnResume)
{
    TempDir dir("tornres");
    exp::ThreadPool pool(1);
    auto config = engineConfig(dir.str());
    config.maxJobsThisRun = 3;
    campaign::runCampaign(config, pool);

    // Simulate a SIGKILL mid-write: unterminated tails on both
    // journals.
    {
        std::ofstream m(dir.str() + "/manifest.jsonl",
                        std::ios::app | std::ios::binary);
        m << "{\"job\":3,\"state\":\"runn";
        std::ofstream r(dir.str() + "/results.jsonl",
                        std::ios::app | std::ios::binary);
        r << "{\"job\":3,\"group\":\"sensor";
    }
    TempDir ref("tornref");
    auto expected =
        campaign::runCampaign(engineConfig(ref.str()), pool);
    auto resumed = campaign::runCampaign(engineConfig(dir.str()), pool);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.tornManifestLines, 1u);
    EXPECT_EQ(resumed.tornResultLines, 1u);
    EXPECT_EQ(resumed.aggregateJson, expected.aggregateJson);
}

TEST(EngineTest, SpatialSpecScenarioInterruptResumesByteIdentical)
{
    // A grid-placed burst scenario built from a declarative spec — the
    // exact wiring campaign_runner --spec uses — must satisfy the same
    // interrupt/resume oracle as the flag-driven spaces.
    const char* text = R"({
      "version": 1,
      "seed": 31,
      "scenario": {
        "kind": "burst",
        "freq_hz": 27000000,
        "power_dbm": 35,
        "grid": {"rows": 6, "cols": 6, "row": 2, "col": 4},
        "burst": {"count": 2, "on_s": 0.002, "gap_s": 0.001}
      },
      "engine": {"seeds": 2, "sim_s": 0.008, "slice_s": 0.002}
    })";
    fault::FaultSpec spec;
    std::string error;
    ASSERT_TRUE(fault::parseSpec(text, &spec, &error)) << error;

    auto makeConfig = [&](const std::string& dir) {
        campaign::EngineConfig config = engineConfig(dir);
        config.seed = fault::resolveSeed(spec);
        config.space.seeds = {1, 2};
        config.space.simSeconds = spec.simS;
        config.space.sliceSimSeconds = spec.sliceS;
        campaign::Scenario sc;
        sc.kind = campaign::ScenarioKind::kBurst;
        sc.freqHz = spec.scenario.freqHz;
        sc.powerDbm = spec.scenario.powerDbm;
        sc.gridRows = spec.scenario.gridRows;
        sc.gridCols = spec.scenario.gridCols;
        sc.gridRow = spec.scenario.gridRow;
        sc.gridCol = spec.scenario.gridCol;
        sc.burstCount = spec.scenario.burstCount;
        sc.burstOnS = spec.scenario.burstOnS;
        sc.burstGapS = spec.scenario.burstGapS;
        campaign::Scenario clean;
        clean.kind = campaign::ScenarioKind::kClean;
        clean.freqHz = 0.0;
        clean.powerDbm = 0.0;
        config.space.scenarios = {clean, sc};
        return config;
    };
    EXPECT_EQ(fault::resolveSeed(spec), 31u);

    TempDir ref("specref"), cut("speccut");
    exp::ThreadPool pool(1);
    auto expected = campaign::runCampaign(makeConfig(ref.str()), pool);
    EXPECT_TRUE(expected.complete);
    // The spatial axis must actually bite: attacked groups fall behind
    // their clean baselines (the grid cell scales coupling, it never
    // disables the attack outright at this power).
    EXPECT_NE(expected.aggregateJson.find("/burst"), std::string::npos);

    std::atomic<bool> armed{false};
    std::atomic<int> checks{0};
    auto config = makeConfig(cut.str());
    config.beforeJob = [&](std::uint64_t job) {
        if (job == 2)
            armed.store(true);
    };
    config.stopRequested = [&] { return armed.load() && ++checks > 2; };
    auto interrupted = campaign::runCampaign(config, pool);
    EXPECT_FALSE(interrupted.complete);

    auto resumed = campaign::runCampaign(makeConfig(cut.str()), pool);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.aggregateJson, expected.aggregateJson);
}

TEST(EngineTest, ScenarioGridAndBurstAxesChangeConfigHash)
{
    campaign::CampaignSpace space = smallSpace();
    const std::uint64_t base = space.configHash();
    campaign::CampaignSpace grid = smallSpace();
    grid.scenarios[1].gridRows = 4;
    grid.scenarios[1].gridCols = 4;
    EXPECT_NE(grid.configHash(), base);
    campaign::CampaignSpace cell = grid;
    cell.scenarios[1].gridCol = 1;
    EXPECT_NE(cell.configHash(), grid.configHash());
    campaign::CampaignSpace burst = smallSpace();
    burst.scenarios[1].burstCount = 2;
    burst.scenarios[1].burstOnS = 0.001;
    EXPECT_NE(burst.configHash(), base);
}

TEST(EngineTest, QuarantineNoteRecordsSpecPath)
{
    TempDir dir("specquar");
    exp::ThreadPool pool(1);
    auto config = engineConfig(dir.str());
    config.space.workloads = {"__poison__"};
    config.maxAttempts = 1;
    config.specPath = "examples/emi_grid_spec.json";
    auto report = campaign::runCampaign(config, pool);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.jobsQuarantined, report.jobsTotal);

    std::ifstream in(dir.str() + "/manifest.jsonl", std::ios::binary);
    std::string manifest((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(
        manifest.find("attempts exhausted; spec=examples/emi_grid_spec.json"),
        std::string::npos)
        << manifest;
}

TEST(EngineTest, JobSpaceDecodeCoversEveryCombination)
{
    campaign::CampaignSpace space = smallSpace();
    const std::uint64_t n = space.jobCount();
    EXPECT_EQ(n, 2u * 2u * 2u);
    std::set<std::string> distinct;
    for (std::uint64_t id = 0; id < n; ++id) {
        campaign::JobSpec spec = jobAt(space, id);
        EXPECT_EQ(spec.job, id);
        distinct.insert(spec.workload + "|" +
                        compiler::schemeName(spec.scheme) + "|" +
                        campaign::scenarioName(spec.scenario.kind) + "|" +
                        std::to_string(spec.seed));
    }
    EXPECT_EQ(distinct.size(), n);
    // The config hash pins the space identity.
    campaign::CampaignSpace other = smallSpace();
    EXPECT_EQ(space.configHash(), other.configHash());
    other.simSeconds *= 2;
    EXPECT_NE(space.configHash(), other.configHash());
}

}  // namespace
}  // namespace gecko
