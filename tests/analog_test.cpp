#include <gtest/gtest.h>

#include <cmath>

#include "analog/adc.hpp"
#include "analog/comparator.hpp"
#include "analog/emi_coupling.hpp"
#include "analog/resonance.hpp"
#include "analog/voltage_monitor.hpp"

namespace gecko::analog {
namespace {

TEST(AdcTest, QuantizationAndClamping)
{
    Adc adc(12, 3.3);
    EXPECT_EQ(adc.sample(0.0), 0u);
    EXPECT_EQ(adc.sample(-1.0), 0u);
    EXPECT_EQ(adc.sample(3.3), adc.maxCode());
    EXPECT_EQ(adc.sample(10.0), adc.maxCode());
    // Mid-scale code maps back near the input.
    double v = 1.65;
    EXPECT_NEAR(adc.quantize(v), v, 3.3 / 4096 + 1e-12);
    // Monotone.
    EXPECT_LE(adc.sample(1.0), adc.sample(1.1));
}

TEST(AdcTest, ResolutionMatters)
{
    Adc coarse(10, 3.3);
    Adc fine(12, 3.3);
    EXPECT_EQ(coarse.maxCode(), 1023u);
    EXPECT_EQ(fine.maxCode(), 4095u);
}

TEST(ComparatorTest, HysteresisPreventsChatter)
{
    Comparator comp(2.2, 0.1, true);
    EXPECT_TRUE(comp.evaluate(2.21));   // inside the band: holds
    EXPECT_TRUE(comp.evaluate(2.16));   // still inside
    EXPECT_FALSE(comp.evaluate(2.14));  // below band: trips low
    EXPECT_FALSE(comp.evaluate(2.24));  // inside: holds low
    EXPECT_TRUE(comp.evaluate(2.26));   // above band: trips high
}

TEST(ComparatorTest, ExactBandEdgeEqualityHoldsState)
{
    // Transitions are strict inequalities: landing *exactly* on
    // ref ± hysteresis/2 holds the current state.  EMI tones sampled at
    // a resonance null can park the seen voltage on the band edge for
    // many evaluations; equality must not flip the output.  Values are
    // binary-exact so there is no rounding slack in the comparison.
    Comparator comp(2.0, 0.5, true);
    EXPECT_TRUE(comp.evaluate(1.75));      // == ref - half: holds high
    EXPECT_TRUE(comp.evaluate(1.75));      // parked there: still holds
    EXPECT_FALSE(comp.evaluate(1.749999));  // strictly below: trips
    EXPECT_FALSE(comp.evaluate(2.25));     // == ref + half: holds low
    EXPECT_FALSE(comp.evaluate(2.25));
    EXPECT_TRUE(comp.evaluate(2.250001));  // strictly above: trips
}

TEST(ComparatorTest, ZeroHysteresisIsStableAtTheReference)
{
    // Degenerate zero-width band: both edges collapse onto the
    // reference.  Input exactly at the reference must hold state in
    // either direction (no chatter from equality), while any strict
    // crossing still trips.
    Comparator comp(2.0, 0.0, true);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(comp.evaluate(2.0));  // v == ref: holds high forever
    EXPECT_FALSE(comp.evaluate(1.999999));
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(comp.evaluate(2.0));  // and holds low symmetrically
    EXPECT_TRUE(comp.evaluate(2.000001));
    EXPECT_TRUE(comp.output());
}

TEST(VoltageMonitorTest, ComparatorMonitorZeroHysteresisEdges)
{
    // Regression: a zero-hysteresis monitor must still be edge-driven —
    // exact-threshold samples generate no backup/wake edge, strict
    // crossings exactly one.
    ComparatorMonitor mon(2.0, 3.0, 0.0, 2e6);
    mon.reset(3.3);
    EXPECT_FALSE(mon.observe(2.0).backup);  // parked on V_backup: none
    EXPECT_FALSE(mon.observe(2.0).backup);
    MonitorEvent ev = mon.observe(1.999999);
    EXPECT_TRUE(ev.backup);
    EXPECT_FALSE(mon.observe(1.9).backup);  // edge-triggered, no re-fire
    EXPECT_FALSE(mon.observe(3.0).wake);    // parked on V_wake: none...
    EXPECT_TRUE(mon.observe(3.000001).wake);  // ...strict cross fires
}

TEST(VoltageMonitorTest, AdcMonitorBackupEdge)
{
    AdcMonitor mon(12, 3.3, 2.2, 3.0, 100e3);
    mon.reset(3.3);
    EXPECT_FALSE(mon.observe(3.2).backup);
    MonitorEvent ev = mon.observe(2.1);
    EXPECT_TRUE(ev.backup);
    // Edge-triggered: staying below does not re-fire.
    EXPECT_FALSE(mon.observe(2.0).backup);
    // Rising above and dipping again re-fires.
    mon.observe(3.1);
    EXPECT_TRUE(mon.observe(2.1).backup);
}

TEST(VoltageMonitorTest, AdcMonitorWakeEdge)
{
    AdcMonitor mon(12, 3.3, 2.2, 3.0, 100e3);
    mon.reset(1.0);
    EXPECT_FALSE(mon.observe(2.9).wake);
    EXPECT_TRUE(mon.observe(3.05).wake);
    EXPECT_FALSE(mon.observe(3.2).wake);
}

TEST(VoltageMonitorTest, ComparatorMonitorEdges)
{
    ComparatorMonitor mon(2.2, 3.0, 0.02, 2e6);
    mon.reset(3.3);
    EXPECT_FALSE(mon.observe(3.2).backup);
    EXPECT_TRUE(mon.observe(2.1).backup);
    EXPECT_FALSE(mon.observe(2.0).backup);
    EXPECT_TRUE(mon.observe(3.1).wake);
}

TEST(VoltageMonitorTest, SampleIntervals)
{
    AdcMonitor adc(12, 3.3, 2.2, 3.0, 100e3);
    ComparatorMonitor comp(2.2, 3.0, 0.02, 2e6);
    EXPECT_DOUBLE_EQ(adc.sampleIntervalS(), 1e-5);
    EXPECT_DOUBLE_EQ(comp.sampleIntervalS(), 5e-7);
}

TEST(ResonanceTest, PeakAndRolloff)
{
    ResonanceCurve curve;
    curve.peaks.push_back({27e6, 12.0, 0.5});
    curve.lowPassHz = 40e6;

    double at_peak = curve.gainAt(27e6);
    double detuned = curve.gainAt(35e6);
    double far = curve.gainAt(200e6);
    EXPECT_GT(at_peak, detuned);
    EXPECT_GT(detuned, far);
    EXPECT_LT(far, 0.01);  // >50 MHz: no effect, as measured in §IV
    // Peak gain is attenuated by the low-pass but still substantial.
    EXPECT_GT(at_peak, 0.2);
}

TEST(ResonanceTest, BroadbandFloor)
{
    ResonanceCurve p2;
    p2.broadbandGain = 0.25;
    p2.lowPassHz = 40e6;
    // Wideband response below the corner, dead above.
    EXPECT_GT(p2.gainAt(5e6), 0.2);
    EXPECT_GT(p2.gainAt(20e6), 0.15);
    EXPECT_LT(p2.gainAt(500e6), 0.005);
}

TEST(EmiCouplingTest, DbmConversions)
{
    EXPECT_NEAR(dbmToWatts(30.0), 1.0, 1e-12);
    EXPECT_NEAR(dbmToWatts(0.0), 1e-3, 1e-15);
    EXPECT_NEAR(wattsToDbm(1.0), 30.0, 1e-9);
    // 35 dBm into 50 Ω: ~17.8 V peak.
    EXPECT_NEAR(sourceAmplitude(35.0), 17.78, 0.05);
}

TEST(EmiCouplingTest, PathLossFollowsDistanceAndFrequency)
{
    double near = freeSpacePathLoss(27e6, 1.0);
    double far = freeSpacePathLoss(27e6, 5.0);
    EXPECT_NEAR(near / far, 5.0, 1e-9);
    // Higher frequency, shorter wavelength, more loss.
    EXPECT_GT(freeSpacePathLoss(27e6, 5.0), freeSpacePathLoss(270e6, 5.0));
    // Clamped at short range.
    EXPECT_LE(freeSpacePathLoss(1e6, 0.05), 1.0);
}

TEST(EmiCouplingTest, RemoteAmplitudeIsMeaningfulAtResonance)
{
    ResonanceCurve curve;
    curve.peaks.push_back({27e6, 12.0, 0.45});
    curve.lowPassHz = 40e6;

    // The paper's strongest remote setup: 35 dBm at 5 m.
    double a = inducedAmplitudeRemote(35.0, 27e6, curve, 5.0);
    EXPECT_GT(a, 0.5);  // enough to drag a 3.3 V rail below V_backup
    EXPECT_LT(a, 5.0);

    // Off-resonance: negligible.
    EXPECT_LT(inducedAmplitudeRemote(35.0, 120e6, curve, 5.0), 0.05);
    // Walls attenuate.
    EXPECT_LT(inducedAmplitudeRemote(35.0, 27e6, curve, 5.0, 10.0), a);
    // Power scales monotonically.
    EXPECT_LT(inducedAmplitudeRemote(20.0, 27e6, curve, 5.0), a);
}

TEST(EmiCouplingTest, DpiBypassesPathLoss)
{
    ResonanceCurve curve;
    curve.peaks.push_back({27e6, 12.0, 0.45});
    curve.lowPassHz = 40e6;
    double dpi = inducedAmplitudeDpi(20.0, 27e6, curve, 0.4);
    double remote = inducedAmplitudeRemote(20.0, 27e6, curve, 5.0);
    EXPECT_GT(dpi, remote);
}

}  // namespace
}  // namespace gecko::analog
