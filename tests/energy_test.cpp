#include <gtest/gtest.h>

#include <cmath>

#include "energy/capacitor.hpp"
#include "energy/harvester.hpp"
#include "energy/power_model.hpp"

namespace gecko::energy {
namespace {

CapacitorConfig
cfg1mF()
{
    CapacitorConfig c;
    c.capacitanceF = 1e-3;
    c.initialV = 3.3;
    c.maxV = 3.3;
    c.leakageS = 0.0;
    return c;
}

TEST(CapacitorTest, EnergyVoltageRelation)
{
    Capacitor cap(cfg1mF());
    EXPECT_NEAR(cap.voltage(), 3.3, 1e-12);
    EXPECT_NEAR(cap.energy(), 0.5 * 1e-3 * 3.3 * 3.3, 1e-12);

    cap.setVoltage(2.0);
    EXPECT_NEAR(cap.energy(), 0.5 * 1e-3 * 4.0, 1e-12);
}

TEST(CapacitorTest, DischargeClampsAtZero)
{
    Capacitor cap(cfg1mF());
    double e = cap.energy();
    EXPECT_DOUBLE_EQ(cap.discharge(e / 2), e / 2);
    EXPECT_NEAR(cap.energy(), e / 2, 1e-15);
    EXPECT_DOUBLE_EQ(cap.discharge(e), e / 2);  // only half was left
    EXPECT_DOUBLE_EQ(cap.energy(), 0.0);
    EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(CapacitorTest, RcChargingApproachesSource)
{
    Capacitor cap(cfg1mF());
    cap.setVoltage(0.0);
    // tau = RC = 100 * 1e-3 = 0.1 s; after 5 tau essentially charged.
    cap.chargeFrom(3.3, 100.0, 0.5);
    EXPECT_GT(cap.voltage(), 3.27);
    EXPECT_LE(cap.voltage(), 3.3);
}

TEST(CapacitorTest, ExactStepMatchesManySmallSteps)
{
    Capacitor one(cfg1mF());
    one.setVoltage(1.0);
    Capacitor many(cfg1mF());
    many.setVoltage(1.0);

    one.chargeFrom(3.3, 50.0, 0.1);
    for (int i = 0; i < 1000; ++i)
        many.chargeFrom(3.3, 50.0, 0.1 / 1000);
    EXPECT_NEAR(one.voltage(), many.voltage(), 1e-9);
}

TEST(CapacitorTest, TimeToReachIsConsistentWithCharging)
{
    Capacitor cap(cfg1mF());
    cap.setVoltage(2.0);
    double t = cap.timeToReach(3.0, 3.3, 100.0);
    ASSERT_GT(t, 0.0);
    cap.chargeFrom(3.3, 100.0, t);
    EXPECT_NEAR(cap.voltage(), 3.0, 1e-6);
}

TEST(CapacitorTest, TimeToReachUnreachable)
{
    Capacitor cap(cfg1mF());
    cap.setVoltage(1.0);
    EXPECT_LT(cap.timeToReach(3.4, 3.3, 100.0), 0.0);  // above source
    EXPECT_EQ(cap.timeToReach(0.5, 3.3, 100.0), 0.0);  // already there
}

TEST(CapacitorTest, ChargeTimeGrowsWithCapacitance)
{
    // The Fig. 15 effect.  The paper keeps the buffered energy equal by
    // adjusting the checkpoint threshold (V_backup rises toward V_on for
    // large C) while V_on stays the hardware's wake level.  With pure RC
    // physics the window charge time would be roughly constant; what
    // makes big supercaps slow is their leakage, which scales with
    // capacitance and eats into the weak harvester's headroom.
    const double v_on = 3.0;
    const double v_backup_1mf = 2.2;
    const double energy = bufferedEnergy(1e-3, v_on, v_backup_1mf);
    const double leak_per_farad = 0.2;  // S/F, supercap-class leakage
    double prev_time = 0.0;
    for (double c : {1e-3, 2e-3, 5e-3, 10e-3}) {
        CapacitorConfig config;
        config.capacitanceF = c;
        config.maxV = 3.4;
        config.leakageS = leak_per_farad * c;
        double v_backup = std::sqrt(v_on * v_on - 2 * energy / c);
        config.initialV = v_backup;
        Capacitor cap(config);
        double t = cap.timeToReach(v_on, 3.4, 30.0);
        ASSERT_GT(t, 0.0) << "C = " << c;
        EXPECT_GT(t, prev_time) << "C = " << c;
        prev_time = t;
    }
}

TEST(CapacitorTest, LeakageDrains)
{
    CapacitorConfig c = cfg1mF();
    c.leakageS = 1e-4;
    Capacitor cap(c);
    double v0 = cap.voltage();
    cap.leak(10.0);
    EXPECT_LT(cap.voltage(), v0);
    // V(t) = V0 exp(-G t / C) = 3.3 * exp(-1)
    EXPECT_NEAR(cap.voltage(), 3.3 * std::exp(-1.0), 1e-6);
}

TEST(HarvesterTest, SquareWaveTiming)
{
    SquareWaveHarvester h(3.3, 50.0, 0.6, 0.4);  // 1 Hz with 60% duty
    EXPECT_EQ(h.openCircuitVoltage(0.1), 3.3);
    EXPECT_EQ(h.openCircuitVoltage(0.7), 0.0);
    EXPECT_EQ(h.openCircuitVoltage(1.1), 3.3);
    EXPECT_TRUE(h.steadyOver(0.1, 0.4));
    EXPECT_FALSE(h.steadyOver(0.5, 0.2));
    EXPECT_TRUE(h.steadyOver(0.7, 0.2));
}

TEST(HarvesterTest, TraceWrapsAround)
{
    TraceHarvester h({1.0, 2.0, 3.0}, 0.5, 10.0);
    EXPECT_EQ(h.openCircuitVoltage(0.0), 1.0);
    EXPECT_EQ(h.openCircuitVoltage(0.6), 2.0);
    EXPECT_EQ(h.openCircuitVoltage(1.2), 3.0);
    EXPECT_EQ(h.openCircuitVoltage(1.6), 1.0);  // wrapped
}

TEST(HarvesterTest, RfTraceHasOutages)
{
    TraceHarvester h = makeRfTrace(3.3, 50.0, 1.0, 0.5, 10.0, 7);
    int on = 0, off = 0;
    for (double t = 0; t < 10.0; t += 0.01)
        (h.openCircuitVoltage(t) > 0 ? on : off)++;
    EXPECT_GT(on, 100);
    EXPECT_GT(off, 100);
}

TEST(PowerModelTest, DerivedQuantities)
{
    PowerModel pm;
    pm.clockHz = 8e6;
    pm.energyPerCycleJ = 3e-9;
    EXPECT_DOUBLE_EQ(pm.secondsPerCycle(), 1.0 / 8e6);
    EXPECT_NEAR(pm.activePowerW(), 0.024, 1e-12);
}

}  // namespace
}  // namespace gecko::energy
