#include <gtest/gtest.h>

#include "compiler/region_formation.hpp"
#include "compiler/wcet.hpp"
#include "ir/builder.hpp"

namespace gecko::compiler {
namespace {

using ir::Opcode;
using ir::Program;
using ir::ProgramBuilder;

int
countBoundaries(const Program& p)
{
    int n = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == Opcode::kBoundary)
            ++n;
    return n;
}

bool
boundaryBetween(const Program& p, std::size_t a, std::size_t b)
{
    for (std::size_t i = a; i < b; ++i)
        if (p.at(i).op == Opcode::kBoundary)
            return true;
    return false;
}

/** Find the n-th instruction with opcode `op`. */
std::size_t
findOp(const Program& p, Opcode op, int nth = 0)
{
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p.at(i).op == op && nth-- == 0)
            return i;
    }
    return Program::npos;
}

TEST(RegionFormationTest, EntryAndLoopHeaderBoundaries)
{
    ProgramBuilder b("t");
    b.movi(1, 10)
        .label("head")
        .subi(1, 1, 1)
        .movi(2, 0)
        .bne(1, 2, "head")
        .halt();
    Program p = b.take();
    RegionFormation::insertStructuralBoundaries(p, {});

    EXPECT_EQ(p.at(0).op, Opcode::kBoundary);
    // Loop header label must point at a boundary so back edges cross it.
    std::size_t head = p.labelPos(*p.findLabel("head"));
    EXPECT_EQ(p.at(head).op, Opcode::kBoundary);
}

TEST(RegionFormationTest, IoAndHaltBoundaries)
{
    ProgramBuilder b("t");
    b.movi(1, 1)
        .in(2, 0)
        .add(1, 1, 2)
        .out(0, 1)
        .halt();
    Program p = b.take();
    RegionFormation::insertStructuralBoundaries(p, {});

    std::size_t in_pos = findOp(p, Opcode::kIn);
    std::size_t out_pos = findOp(p, Opcode::kOut);
    std::size_t halt_pos = findOp(p, Opcode::kHalt);
    EXPECT_EQ(p.at(in_pos - 1).op, Opcode::kBoundary);
    EXPECT_EQ(p.at(in_pos + 1).op, Opcode::kBoundary);
    EXPECT_EQ(p.at(out_pos - 1).op, Opcode::kBoundary);
    EXPECT_EQ(p.at(halt_pos - 1).op, Opcode::kBoundary);
}

TEST(RegionFormationTest, CallBoundaries)
{
    ProgramBuilder b("t");
    b.movi(1, 1)
        .call("fn")
        .halt()
        .label("fn")
        .ret();
    Program p = b.take();
    RegionFormation::insertStructuralBoundaries(p, {});

    std::size_t call_pos = findOp(p, Opcode::kCall);
    EXPECT_EQ(p.at(call_pos - 1).op, Opcode::kBoundary);
    EXPECT_EQ(p.at(call_pos + 1).op, Opcode::kBoundary);
    std::size_t fn_pos = p.labelPos(*p.findLabel("fn"));
    EXPECT_EQ(p.at(fn_pos).op, Opcode::kBoundary);
}

TEST(RegionFormationTest, CutsWarAntiDependence)
{
    // load @100 then store @100: a WAR that must be cut.
    ProgramBuilder b("t");
    b.movi(1, 100)
        .load(2, 1, 0)
        .addi(2, 2, 1)
        .store(1, 0, 2)
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});

    std::size_t load_pos = findOp(p, Opcode::kLoad);
    std::size_t store_pos = findOp(p, Opcode::kStore);
    EXPECT_TRUE(boundaryBetween(p, load_pos + 1, store_pos));
}

TEST(RegionFormationTest, WarawIsNotCut)
{
    // store @100, load @100, store @100: protected by the first write.
    ProgramBuilder b("t");
    b.movi(1, 100)
        .movi(2, 5)
        .store(1, 0, 2)
        .load(3, 1, 0)
        .addi(3, 3, 1)
        .store(1, 0, 3)
        .halt();
    Program p = b.take();
    Program original = p;
    RegionFormation::run(p, {});

    std::size_t first_store = findOp(p, Opcode::kStore, 0);
    std::size_t second_store = findOp(p, Opcode::kStore, 1);
    EXPECT_FALSE(boundaryBetween(p, first_store + 1, second_store))
        << "WARAW dependence must not be cut";
}

TEST(RegionFormationTest, DisjointAddressesNotCut)
{
    ProgramBuilder b("t");
    b.movi(1, 100)
        .load(2, 1, 0)    // @100
        .store(1, 1, 2)   // @101 — no WAR
        .halt();
    Program p = b.take();
    int before = countBoundaries(p);
    RegionFormation::cutAntiDependences(p);
    EXPECT_EQ(countBoundaries(p), before);
}

TEST(RegionFormationTest, UnknownAddressesCutConservatively)
{
    ProgramBuilder b("t");
    b.in(1, 0)
        .load(2, 1, 0)
        .in(3, 0)
        .store(3, 0, 2)  // unknown store after unknown load: may-WAR
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    std::size_t load_pos = findOp(p, Opcode::kLoad);
    std::size_t store_pos = findOp(p, Opcode::kStore);
    EXPECT_TRUE(boundaryBetween(p, load_pos + 1, store_pos));
}

TEST(RegionFormationTest, CrossIterationWarCutByLoopHeader)
{
    // The loop reads then writes the same address across iterations; the
    // loop-header boundary already separates the store (iteration i) from
    // the load (iteration i+1).
    ProgramBuilder b("t");
    b.movi(1, 100)
        .movi(4, 8)
        .label("head")
        .load(2, 1, 0)
        .addi(2, 2, 1)
        .store(1, 0, 2)
        .subi(4, 4, 1)
        .movi(5, 0)
        .bne(4, 5, "head")
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    // In-region WAR (load→store inside one iteration) must still be cut.
    std::size_t load_pos = findOp(p, Opcode::kLoad);
    std::size_t store_pos = findOp(p, Opcode::kStore);
    EXPECT_TRUE(boundaryBetween(p, load_pos + 1, store_pos));
}

TEST(RegionFormationTest, Idempotent)
{
    ProgramBuilder b("t");
    b.movi(1, 100)
        .load(2, 1, 0)
        .store(1, 0, 2)
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    int n = countBoundaries(p);
    RegionFormation::run(p, {});
    EXPECT_EQ(countBoundaries(p), n);
}

TEST(WcetTest, AnalyzeSimpleRegions)
{
    ProgramBuilder b("t");
    b.movi(1, 1).movi(2, 2).add(3, 1, 2).halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    auto regions = Wcet::analyze(p);
    ASSERT_GE(regions.size(), 1u);
    // First region: boundary(2) + movi+movi+add(3) up to the halt
    // boundary.
    EXPECT_EQ(regions[0].second, 5);
}

TEST(WcetTest, LongestPathPicksWorstBranch)
{
    ProgramBuilder b("t");
    b.movi(1, 1)
        .beq(1, 0, "cheap")
        .divu(2, 1, 1)   // expensive side (24 cycles)
        .jmp("join")
        .label("cheap")
        .addi(2, 1, 1)   // cheap side (1 cycle)
        .label("join")
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    auto regions = Wcet::analyze(p);
    // Worst path must include the division.
    long max_wcet = 0;
    for (auto& [idx, c] : regions)
        max_wcet = std::max(max_wcet, c);
    EXPECT_GE(max_wcet, 24);
}

TEST(WcetTest, EnforceSplitsLongRegions)
{
    ProgramBuilder b("t");
    b.movi(1, 0);
    for (int i = 0; i < 100; ++i)
        b.addi(1, 1, 1);
    b.halt();
    Program p = b.take();
    RegionFormation::run(p, {});

    int inserted = Wcet::enforce(p, 30);
    EXPECT_GT(inserted, 0);
    for (auto& [idx, c] : Wcet::analyze(p))
        EXPECT_LE(c, 30);
}

TEST(WcetTest, EnforceIsolatesOversizedInstructions)
{
    // A 24-cycle divide cannot fit a 10-cycle budget; the best feasible
    // result is each oversized instruction alone in its own region.
    ProgramBuilder b("t");
    b.divu(1, 2, 3).divu(1, 2, 3).halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    Wcet::enforce(p, 10);
    int boundaries = countBoundaries(p);
    EXPECT_GE(boundaries, 3);  // entry, between the divides, pre-halt
    // Each remaining region contains at most one real instruction
    // (divu = 24 cycles plus boundary bookkeeping).
    for (auto& [idx, cycles] : Wcet::analyze(p)) {
        (void)idx;
        EXPECT_LE(cycles, 24 + 4);
    }
}

TEST(WcetTest, ThrowsOnBoundaryFreeCycle)
{
    ProgramBuilder b("t");
    b.label("spin").addi(1, 1, 1).jmp("spin");
    Program p = b.take();
    // No structural boundaries inserted: the loop has no boundary.
    EXPECT_THROW(Wcet::wcetFrom(p, 0), std::runtime_error);
}

}  // namespace
}  // namespace gecko::compiler
