#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "compiler/pipeline.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/jit_checkpoint.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * The paper's correctness claim as an executable property: *regardless
 * of when a power failure occurs, the program remains intact and
 * recoverable* (§I).  For every workload and scheme we sweep power
 * failures across the whole execution and require the observable output
 * and the final NVM data image to equal the failure-free run — for hard
 * failures (rollback recovery incl. recovery blocks, GECKO under
 * attack) and for graceful JIT cycles (roll-forward).
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using runtime::GeckoRuntime;
using sim::IoHub;
using sim::JitCheckpoint;
using sim::Machine;
using sim::Nvm;
using sim::RunExit;

struct RunResult {
    std::vector<std::uint32_t> out0;
    std::vector<std::uint32_t> out2;
    std::vector<std::uint32_t> memory;
    std::uint64_t conflicts = 0;
    std::uint64_t boots = 0;
};

enum class FailureKind {
    kHard,      ///< brown-out with no checkpoint: forces rollback
    kGraceful,  ///< JIT checkpoint completes: forces roll-forward
};

/**
 * Execute `compiled` to completion, injecting a power failure roughly
 * every `interval` executed cycles (at most `max_failures` of them —
 * unbounded injection livelocks schemes whose region re-execution
 * exceeds the interval, which is Ratchet's documented DoS mode, not a
 * consistency bug).
 */
RunResult
runWithFailures(const CompiledProgram& compiled, const std::string& name,
                std::uint64_t interval, FailureKind kind,
                std::uint64_t first_failure = 0, int max_failures = 25)
{
    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo(name, io);
    Machine machine(compiled, nvm, io);
    machine.setStagedIo(compiled.scheme != Scheme::kNvp);
    GeckoRuntime runtime(compiled, machine, nvm);

    runtime.onBoot();
    std::uint64_t executed = 0;
    std::uint64_t next_failure = first_failure ? first_failure : interval;
    std::uint64_t watchdog = 0;

    while (!machine.halted()) {
        std::uint64_t budget =
            next_failure > executed ? next_failure - executed : 1;
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(budget, &consumed);
        executed += consumed;
        if (consumed > 0)
            runtime.noteExecutionSinceCheckpoint();
        runtime.onProgress();
        if (exit == RunExit::kHalted)
            break;
        if (executed >= next_failure && max_failures-- > 0) {
            if (kind == FailureKind::kGraceful && runtime.jitActive()) {
                JitCheckpoint::checkpoint(machine, nvm,
                                          [](int) { return true; });
                runtime.noteJitCheckpointComplete();
            }
            machine.powerCycle();
            runtime.onBoot();
        }
        if (executed >= next_failure)
            next_failure += interval;
        if (++watchdog > 2'000'000)
            throw std::runtime_error("no forward progress (livelock)");
    }

    RunResult result;
    result.out0 = io.output(0).values();
    result.out2 = io.output(2).values();
    result.memory = nvm.data();
    result.conflicts = io.output(0).conflicts() + io.output(2).conflicts();
    result.boots = nvm.bootCount;
    return result;
}

RunResult
goldenRun(const CompiledProgram& compiled, const std::string& name,
          std::uint64_t* cycles = nullptr)
{
    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo(name, io);
    std::uint64_t c = sim::runToCompletion(compiled, nvm, io);
    if (cycles)
        *cycles = c;
    RunResult r;
    r.out0 = io.output(0).values();
    r.out2 = io.output(2).values();
    r.memory = nvm.data();
    return r;
}

using Param = std::tuple<std::string, Scheme>;

class CrashConsistencyTest : public ::testing::TestWithParam<Param>
{
  protected:
    std::string name() const { return std::get<0>(GetParam()); }
    Scheme scheme() const { return std::get<1>(GetParam()); }
};

TEST_P(CrashConsistencyTest, HardFailureSweepMatchesGolden)
{
    CompiledProgram compiled =
        compiler::compile(workloads::build(name()), scheme());
    std::uint64_t golden_cycles = 0;
    RunResult gold = goldenRun(compiled, name(), &golden_cycles);

    // Sweep several failure cadences scaled to the program so even the
    // shortest workloads see failures; odd divisors land failures at
    // many distinct program points, including inside entry sequences.
    for (std::uint64_t interval :
         {std::max<std::uint64_t>(53, golden_cycles / 37),
          std::max<std::uint64_t>(101, golden_cycles / 11),
          std::max<std::uint64_t>(211, golden_cycles / 3)}) {
        RunResult r =
            runWithFailures(compiled, name(), interval, FailureKind::kHard);
        EXPECT_EQ(r.out0, gold.out0)
            << name() << " interval " << interval;
        EXPECT_EQ(r.out2, gold.out2);
        EXPECT_EQ(r.memory, gold.memory);
        EXPECT_EQ(r.conflicts, 0u);
        EXPECT_GT(r.boots, 1u) << "no failures were injected";
    }
}

TEST_P(CrashConsistencyTest, DenseFirstFailureOffsets)
{
    // Vary the offset of the very first failure at fine granularity so
    // every part of the early entry sequences gets hit.
    CompiledProgram compiled =
        compiler::compile(workloads::build(name()), scheme());
    RunResult gold = goldenRun(compiled, name());
    for (std::uint64_t offset = 1; offset <= 61; offset += 3) {
        RunResult r = runWithFailures(compiled, name(), 7919,
                                      FailureKind::kHard, offset);
        ASSERT_EQ(r.out0, gold.out0) << name() << " offset " << offset;
        ASSERT_EQ(r.memory, gold.memory) << name() << " offset " << offset;
    }
}

INSTANTIATE_TEST_SUITE_P(
    RollbackSchemes, CrashConsistencyTest,
    ::testing::Combine(::testing::ValuesIn([] {
                           auto v = workloads::benchmarkNames();
                           v.push_back("sensor_loop");
                           v.push_back("sensor_app");
                           v.push_back("xtea");
                           return v;
                       }()),
                       ::testing::Values(Scheme::kRatchet,
                                         Scheme::kGeckoNoPrune,
                                         Scheme::kGecko)),
    [](const auto& info) {
        std::string name = std::get<0>(info.param) + "_" +
                           compiler::schemeName(std::get<1>(info.param));
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class GracefulCycleTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GracefulCycleTest, JitRollForwardMatchesGolden)
{
    for (Scheme scheme : {Scheme::kNvp, Scheme::kGecko}) {
        CompiledProgram compiled =
            compiler::compile(workloads::build(GetParam()), scheme);
        RunResult gold = goldenRun(compiled, GetParam());
        RunResult r = runWithFailures(compiled, GetParam(), 2003,
                                      FailureKind::kGraceful);
        EXPECT_EQ(r.out0, gold.out0)
            << GetParam() << " " << compiler::schemeName(scheme);
        EXPECT_EQ(r.memory, gold.memory);
        EXPECT_EQ(r.conflicts, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GracefulCycleTest,
                         ::testing::ValuesIn([] {
                             auto v = workloads::benchmarkNames();
                             v.push_back("sensor_loop");
                             v.push_back("sensor_app");
                             v.push_back("xtea");
                             return v;
                         }()),
                         [](const auto& info) { return info.param; });

TEST(CrashConsistencyTest, MixedGracefulAndHardCycles)
{
    // Alternate roll-forward and rollback recoveries within one run:
    // the GECKO hybrid switching must stay consistent.
    const std::string name = "dijkstra";
    CompiledProgram compiled =
        compiler::compile(workloads::build(name), Scheme::kGecko);
    RunResult gold = goldenRun(compiled, name);

    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo(name, io);
    Machine machine(compiled, nvm, io);
    machine.setStagedIo(true);
    GeckoRuntime runtime(compiled, machine, nvm);
    runtime.onBoot();

    int cycle = 0;
    std::uint64_t watchdog = 0;
    while (!machine.halted()) {
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(1501, &consumed);
        if (consumed > 0)
            runtime.noteExecutionSinceCheckpoint();
        runtime.onProgress();
        if (exit == RunExit::kHalted)
            break;
        if (cycle++ % 2 == 0 && runtime.jitActive()) {
            JitCheckpoint::checkpoint(machine, nvm,
                                      [](int) { return true; });
            runtime.noteJitCheckpointComplete();
        }
        machine.powerCycle();
        runtime.onBoot();
        ASSERT_LT(++watchdog, 1'000'000u);
    }

    EXPECT_EQ(io.output(0).values(), gold.out0);
    EXPECT_EQ(nvm.data(), gold.memory);
    EXPECT_EQ(io.output(0).conflicts(), 0u);
}

}  // namespace
}  // namespace gecko
