#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Perf smoke (ctest label `perf`): a short fig13 slice — the attacked
 * sensor app on duty-cycled power — run under the fast-dispatch and
 * block-compiled backends.  Fails if
 *  - the block backend diverges from fast dispatch in any observable
 *    final state (the figures' byte-identical-stdout guarantee), or
 *  - the block backend is more than 10% *slower* than fast dispatch
 *    (a regression guard, not a speedup assertion: wall-clock ratios
 *    on shared CI hosts are too noisy to gate the 3x target, which is
 *    recorded in BENCH_sweeps.json instead).
 * Each backend takes the best of three timed runs to damp scheduler
 * noise.
 */

namespace gecko {
namespace {

struct SliceResult {
    sim::ExecStats stats;
    std::array<std::uint32_t, 16> regs{};
    std::uint32_t pc = 0;
    std::vector<std::uint32_t> out;
    std::vector<std::uint32_t> memory;
    double bestWallS = 0.0;
};

/** One fig13 scenario-(f) GECKO cell, shortened to 20 paper-minutes. */
SliceResult
runSlice(sim::ExecBackend backend, int reps)
{
    const double kMinuteS = 0.2;
    const double kTotalMin = 20.0;

    static const compiler::CompiledProgram compiled = [] {
        compiler::PipelineConfig pconfig;
        pconfig.maxRegionCycles = 6000;
        return compiler::compile(workloads::build("sensor_app"),
                                 compiler::Scheme::kGecko, pconfig);
    }();
    const auto& dev = device::DeviceDb::msp430fr5994();

    SliceResult result;
    for (int rep = 0; rep < reps; ++rep) {
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester wave(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        attack::AttackSchedule schedule =
            attack::AttackSchedule::scenario('f', kMinuteS, 5.0, 27e6,
                                             35.0);
        attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
        attack::EmiSource source(rig, 27e6, 35.0);

        sim::IntermittentSim simulation(compiled, dev, config, wave, io);
        simulation.machine().setExecBackend(backend);
        simulation.setEmiSource(&source);
        simulation.setAttackSchedule(&schedule);

        auto t0 = std::chrono::steady_clock::now();
        simulation.run(kTotalMin * kMinuteS);
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();

        if (rep == 0 || wall < result.bestWallS)
            result.bestWallS = wall;
        result.stats = simulation.machine().stats;
        result.regs = simulation.machine().regs();
        result.pc = simulation.machine().pc();
        result.out = io.output(0).values();
        result.memory = simulation.nvm().data();
    }
    return result;
}

TEST(PerfSmokeTest, BlockBackendKeepsPaceWithFastDispatch)
{
    SliceResult fast = runSlice(sim::ExecBackend::kFast, 3);
    SliceResult block = runSlice(sim::ExecBackend::kBlock, 3);

    // Divergence in final machine state fails regardless of timing.
    EXPECT_TRUE(block.stats == fast.stats)
        << "block backend diverged in ExecStats";
    EXPECT_EQ(block.regs, fast.regs);
    EXPECT_EQ(block.pc, fast.pc);
    EXPECT_EQ(block.out, fast.out);
    EXPECT_EQ(block.memory, fast.memory);
    ASSERT_GT(fast.stats.cycles, 1'000'000u) << "slice too short to time";

    EXPECT_LE(block.bestWallS, fast.bestWallS * 1.10)
        << "block backend regressed: " << block.bestWallS
        << "s vs fast " << fast.bestWallS << "s";

    // Informational: the recorded speedup lives in BENCH_sweeps.json.
    std::cout << "[perf_smoke] fast " << fast.bestWallS << "s, block "
              << block.bestWallS << "s ("
              << fast.bestWallS / block.bestWallS << "x)\n";
}

/**
 * Quantum-coalescing regression guard (DESIGN.md §14): a quiet
 * fig13-style slice — same device/cap/workload, attack tone absent —
 * must (a) actually engage the coalescing fast path and (b) sustain a
 * conservative simulated-cycles-per-wall-second floor.  The floor is
 * ~20x below the rate a contended 1-core host reaches, so it only trips
 * on a genuine collapse of the fast path (e.g. the guard chain
 * rejecting every burst), not on CI noise.
 */
TEST(PerfSmokeTest, QuietSliceCoalescesAndHoldsThroughputFloor)
{
    static const compiler::CompiledProgram compiled = [] {
        compiler::PipelineConfig pconfig;
        pconfig.maxRegionCycles = 6000;
        return compiler::compile(workloads::build("sensor_app"),
                                 compiler::Scheme::kGecko, pconfig);
    }();
    const auto& dev = device::DeviceDb::msp430fr5994();

    double bestWallS = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t quanta = 0;
    std::uint64_t coalesced = 0;
    for (int rep = 0; rep < 3; ++rep) {
        sim::IoHub io;
        workloads::setupIo("sensor_app", io);
        energy::ConstantHarvester wave(3.3, 150.0);
        sim::SimConfig config;
        config.cap.capacitanceF = 1e-3;
        config.coalesceQuanta = 64;

        sim::IntermittentSim simulation(compiled, dev, config, wave, io);
        simulation.machine().setExecBackend(sim::ExecBackend::kBlock);

        auto t0 = std::chrono::steady_clock::now();
        simulation.run(2.0);
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || wall < bestWallS)
            bestWallS = wall;
        cycles = simulation.machine().stats.cycles;
        quanta = simulation.stats.quanta;
        coalesced = simulation.stats.coalescedQuanta;
    }

    ASSERT_GT(cycles, 1'000'000u) << "slice too short to time";
    EXPECT_GT(coalesced, 0u)
        << "coalescing fast path never engaged on a quiet slice";
    // Most quanta of a quiet steady-source run should coalesce.
    EXPECT_GT(coalesced * 2, quanta)
        << "fast path absorbed only " << coalesced << " of " << quanta
        << " quanta";
    const double simCyclesPerS = static_cast<double>(cycles) / bestWallS;
    EXPECT_GE(simCyclesPerS, 5e7)
        << "quiet-slice throughput collapsed: " << simCyclesPerS
        << " sim cycles/s (" << cycles << " cycles in " << bestWallS
        << "s)";
    std::cout << "[perf_smoke] quiet slice: " << simCyclesPerS
              << " sim cycles/s, " << coalesced << "/" << quanta
              << " quanta coalesced\n";
}

}  // namespace
}  // namespace gecko
