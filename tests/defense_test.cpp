#include <gtest/gtest.h>

#include "defense/controller.hpp"

/**
 * Unit tests of the adaptive defense controller (DESIGN.md §11): the
 * anomaly-scoring escalation ladder, the hysteretic de-escalation, the
 * forward-progress ratchet, the escalated save backoff, and the
 * kDegraded recharge-dwell wake gate.  The controller is pure state, so
 * every test drives it directly with synthetic observations.
 */

namespace gecko::defense {
namespace {

DefenseConfig
fastConfig()
{
    DefenseConfig config;
    config.enabled = true;
    config.calmSamples = 4;
    config.decayPerSample = 0.2;
    return config;
}

/** Feed one physics-violating sample (a step far beyond the RC bound). */
void
violate(DefenseController& dc, double& t, double& v)
{
    analog::MonitorEvent ev;
    t += 1e-5;
    v = (v > 2.0) ? 0.5 : 3.3;  // volt-scale jump every call
    dc.observeSample(t, v, v, ev, ev);
}

/** Feed one calm sample (no motion, agreeing views). */
void
calm(DefenseController& dc, double& t, double v)
{
    analog::MonitorEvent ev;
    t += 1e-5;
    dc.observeSample(t, v, v, ev, ev);
}

TEST(DefenseTest, ModeNamesAreStable)
{
    EXPECT_STREQ(modeName(Mode::kNominal), "nominal");
    EXPECT_STREQ(modeName(Mode::kSuspicious), "suspicious");
    EXPECT_STREQ(modeName(Mode::kUnderAttack), "under_attack");
    EXPECT_STREQ(modeName(Mode::kDegraded), "degraded");
}

TEST(DefenseTest, CleanSamplesNeverEscalate)
{
    DefenseController dc(fastConfig(), PlantModel{});
    double t = 0.0;
    analog::MonitorEvent ev;
    // A legitimate discharge ramp: small steps well inside the physics
    // bound, both monitor views agreeing.
    double v = 3.0;
    for (int i = 0; i < 1000; ++i) {
        dc.observeSample(t, v, v, ev, ev);
        t += 1e-5;
        v -= 1e-5;
    }
    EXPECT_EQ(dc.mode(), Mode::kNominal);
    EXPECT_EQ(dc.stats().escalations, 0u);
    EXPECT_EQ(dc.stats().anomalies, 0u);
    EXPECT_TRUE(dc.jitAllowed());
}

TEST(DefenseTest, PhysicsViolationsEscalateThroughLadder)
{
    DefenseController dc(fastConfig(), PlantModel{});
    double t = 0.0, v = 3.0;
    calm(dc, t, v);  // baseline sample
    violate(dc, t, v);
    EXPECT_EQ(dc.mode(), Mode::kSuspicious);  // one hit crosses 1.0
    EXPECT_TRUE(dc.jitAllowed());             // guarded JIT still on
    while (dc.mode() != Mode::kUnderAttack)
        violate(dc, t, v);
    EXPECT_FALSE(dc.jitAllowed());
    EXPECT_GE(dc.stats().physicsViolations, 2u);
    EXPECT_EQ(dc.stats().anomalies, 1u);  // edge-latched, traced once
    EXPECT_GE(dc.stats().firstEscalationT, 0.0);
}

TEST(DefenseTest, MonitorDisagreementIsEvidence)
{
    DefenseController dc(fastConfig(), PlantModel{});
    double t = 0.0;
    analog::MonitorEvent primary, shadow;
    primary.backup = true;  // shadow channel saw no backup edge
    for (int i = 0; i < 10; ++i) {
        dc.observeSample(t, 3.0, 3.0, primary, shadow);
        t += 1e-5;
    }
    EXPECT_GE(dc.stats().disagreements, 10u);
    EXPECT_GE(dc.mode(), Mode::kSuspicious);
}

TEST(DefenseTest, SkewedEdgePairReconcilesAsBenign)
{
    // A genuine supply crossing (e.g. the wake ramp after a harvester
    // outage): the primary monitor trips the edge one sample before the
    // shadow does.  That pair must reconcile as sampling skew, not
    // score as forgery — this was a strict-preset false positive.
    DefenseController dc(fastConfig(), PlantModel{});
    double t = 0.0;
    analog::MonitorEvent none, primaryWake, shadowWake;
    primaryWake.wake = true;
    shadowWake.wake = true;
    for (int edge = 0; edge < 8; ++edge) {
        dc.observeSample(t += 1e-5, 3.0, 3.0, primaryWake, none);
        dc.observeSample(t += 1e-5, 3.0, 3.0, none, shadowWake);
        for (int i = 0; i < 20; ++i)
            dc.observeSample(t += 1e-5, 3.0, 3.0, none, none);
    }
    EXPECT_EQ(dc.stats().edgeSkews, 8u);
    EXPECT_EQ(dc.stats().disagreements, 16u);  // raw mismatches counted
    EXPECT_EQ(dc.stats().escalations, 0u);
    EXPECT_EQ(dc.stats().anomalies, 0u);
    EXPECT_EQ(dc.mode(), Mode::kNominal);
}

TEST(DefenseTest, UnmatchedEdgePulseMaturesIntoEvidence)
{
    // A forged trough couples into only one sensing path: the pulse is
    // never confirmed, so it must still charge the disagreement weight
    // once the one-sample skew grace closes — a one-sample detection
    // latency, never a free pass.
    DefenseController dc(fastConfig(), PlantModel{});
    double t = 0.0;
    analog::MonitorEvent none, forged;
    forged.backup = true;  // only the shadow comparator sees the trough
    dc.observeSample(t += 1e-5, 3.0, 3.0, none, forged);
    EXPECT_EQ(dc.score(), 0.0);  // held pending, not yet evidence
    dc.observeSample(t += 1e-5, 3.0, 3.0, none, none);
    EXPECT_EQ(dc.score(), 0.0);  // still inside the skew grace
    dc.observeSample(t += 1e-5, 3.0, 3.0, none, none);
    EXPECT_GT(dc.score(), 0.0);  // grace closed: charged in full
    EXPECT_EQ(dc.stats().edgeSkews, 0u);
    EXPECT_EQ(dc.stats().disagreements, 1u);

    // Sustained forgery (a pulse every sample) charges every sample
    // after the first: the ladder still escalates.
    for (int i = 0; i < 20; ++i)
        dc.observeSample(t += 1e-5, 3.0, 3.0, none, forged);
    EXPECT_GE(dc.mode(), Mode::kSuspicious);
    EXPECT_EQ(dc.stats().edgeSkews, 0u);
}

TEST(DefenseTest, EdgeSkewZeroRestoresImmediateCharging)
{
    DefenseConfig config = fastConfig();
    config.edgeSkewSamples = 0;
    DefenseController dc(config, PlantModel{});
    double t = 0.0;
    analog::MonitorEvent none, primaryWake, shadowWake;
    primaryWake.wake = true;
    shadowWake.wake = true;
    // The same benign skewed pair now charges both samples immediately.
    dc.observeSample(t += 1e-5, 3.0, 3.0, primaryWake, none);
    dc.observeSample(t += 1e-5, 3.0, 3.0, none, shadowWake);
    EXPECT_EQ(dc.stats().edgeSkews, 0u);
    EXPECT_EQ(dc.stats().disagreements, 2u);
    EXPECT_GT(dc.score(), 0.0);
}

TEST(DefenseTest, HysteresisStepsDownOneLevelPerCalmDwell)
{
    DefenseConfig config = fastConfig();
    DefenseController dc(config, PlantModel{});
    double t = 0.0, v = 3.0;
    calm(dc, t, v);
    while (dc.mode() != Mode::kUnderAttack)
        violate(dc, t, v);

    // Decay to below scoreClear, then count the calm dwell per level.
    int toSuspicious = 0;
    while (dc.mode() == Mode::kUnderAttack) {
        calm(dc, t, v);
        ++toSuspicious;
    }
    EXPECT_EQ(dc.mode(), Mode::kSuspicious);
    EXPECT_GE(toSuspicious, config.calmSamples);
    // The next level needs a *fresh* dwell — strictly more samples.
    int toNominal = 0;
    while (dc.mode() == Mode::kSuspicious) {
        calm(dc, t, v);
        ++toNominal;
    }
    EXPECT_EQ(dc.mode(), Mode::kNominal);
    EXPECT_EQ(toNominal, config.calmSamples);
    EXPECT_EQ(dc.stats().deEscalations, 2u);
}

TEST(DefenseTest, RatchetTripsOnStuckRegion)
{
    DefenseController dc(fastConfig(), PlantModel{});
    // Budget is 4 consecutive rollbacks of one region; the 5th trips.
    for (int i = 0; i < 4; ++i)
        dc.noteRollback(0.1 * i, 7);
    EXPECT_EQ(dc.stats().ratchetTrips, 0u);
    EXPECT_NE(dc.mode(), Mode::kDegraded);
    dc.noteRollback(0.5, 7);
    EXPECT_EQ(dc.stats().ratchetTrips, 1u);
    EXPECT_EQ(dc.mode(), Mode::kDegraded);
    EXPECT_FALSE(dc.jitAllowed());
}

TEST(DefenseTest, RedoCommitDoesNotReArmRatchet)
{
    // The livelock signature: every power cycle re-commits the
    // rolled-back region once, then dies again.  The commit counter
    // moves but the frontier does not — the budget must still trip.
    DefenseController dc(fastConfig(), PlantModel{});
    std::uint64_t commits = 0;
    for (int i = 0; i < 5; ++i) {
        dc.noteRollback(0.1 * i, 7);
        dc.noteCommit(++commits);  // the redo commit
    }
    EXPECT_EQ(dc.mode(), Mode::kDegraded);
    EXPECT_EQ(dc.stats().ratchetTrips, 1u);
}

TEST(DefenseTest, RealProgressReArmsRatchet)
{
    // Two or more commits per power cycle (the redo plus new work) is
    // forward progress: the budget re-arms and never trips.
    DefenseController dc(fastConfig(), PlantModel{});
    std::uint64_t commits = 0;
    for (int i = 0; i < 50; ++i) {
        dc.noteRollback(0.1 * i, 7);
        commits += 2;
        dc.noteCommit(commits);
    }
    EXPECT_EQ(dc.stats().ratchetTrips, 0u);
    EXPECT_NE(dc.mode(), Mode::kDegraded);
}

TEST(DefenseTest, EnergyDebtLedgerTripsAndCommitsPayBack)
{
    DefenseConfig config = fastConfig();
    config.energyDebtBudgetJ = 1e-3;
    PlantModel plant;
    plant.bootEnergyJ = 1e-4;  // commit credit quantum
    DefenseController dc(config, plant);

    // Nine boots' worth of waste with one commit in between: the commit
    // pays exactly one quantum back, so the tenth pushes past budget.
    for (int i = 0; i < 9; ++i)
        dc.noteEnergyCost(0.01 * i, 1e-4);
    dc.noteCommit(1);
    EXPECT_NEAR(dc.stats().energyDebtJ, 8e-4, 1e-12);
    EXPECT_EQ(dc.stats().ratchetTrips, 0u);
    dc.noteEnergyCost(0.2, 1.5e-4);
    dc.noteEnergyCost(0.3, 1.5e-4);
    EXPECT_EQ(dc.stats().ratchetTrips, 1u);
    EXPECT_EQ(dc.mode(), Mode::kDegraded);
    EXPECT_GT(dc.stats().peakEnergyDebtJ, 1e-3);
}

TEST(DefenseTest, RetriesExhaustedDegradesDirectly)
{
    DefenseController dc(fastConfig(), PlantModel{});
    dc.noteRetriesExhausted(1.0);
    EXPECT_EQ(dc.mode(), Mode::kDegraded);
    EXPECT_FALSE(dc.jitAllowed());
}

TEST(DefenseTest, DegradedExitRequiresProvenProgress)
{
    DefenseConfig config = fastConfig();
    DefenseController dc(config, PlantModel{});
    double t = 0.0, v = 3.0;
    dc.noteRetriesExhausted(t);
    ASSERT_EQ(dc.mode(), Mode::kDegraded);

    // Calm alone is not enough: without a commit since entering
    // kDegraded the controller refuses to step down.
    for (int i = 0; i < 20 * config.calmSamples; ++i)
        calm(dc, t, v);
    EXPECT_EQ(dc.mode(), Mode::kDegraded);

    dc.noteCommit(1);
    while (dc.mode() != Mode::kNominal)
        calm(dc, t, v);
    EXPECT_EQ(dc.stats().deEscalations, 3u);
    EXPECT_TRUE(dc.jitAllowed());
}

TEST(DefenseTest, BackoffLinearNominalExponentialEscalated)
{
    DefenseConfig config = fastConfig();
    DefenseController dc(config, PlantModel{});
    // Nominal preserves the legacy linear policy.
    EXPECT_EQ(dc.backoffCycles(0), 256);
    EXPECT_EQ(dc.backoffCycles(1), 512);
    EXPECT_EQ(dc.backoffCycles(2), 768);

    double t = 0.0, v = 3.0;
    calm(dc, t, v);
    violate(dc, t, v);
    ASSERT_EQ(dc.mode(), Mode::kSuspicious);
    // Escalated: exponential with a cap, immune to shift overflow.
    EXPECT_EQ(dc.backoffCycles(0), 256);
    EXPECT_EQ(dc.backoffCycles(1), 512);
    EXPECT_EQ(dc.backoffCycles(2), 1024);
    EXPECT_EQ(dc.backoffCycles(5), 8192);
    EXPECT_EQ(dc.backoffCycles(63), 8192);
}

TEST(DefenseTest, WakeDwellGatesOnlyDegraded)
{
    DefenseController dc(fastConfig(), PlantModel{});
    // Outside kDegraded the dwell never arms.
    dc.noteSleepEnter(0.0, 0.5);
    EXPECT_TRUE(dc.wakeAllowed(0.1));
    EXPECT_EQ(dc.stats().wakesDeferred, 0u);

    dc.noteRetriesExhausted(0.2);
    ASSERT_EQ(dc.mode(), Mode::kDegraded);
    dc.noteSleepEnter(1.0, 0.5);  // recharge estimate: ready at 1.5
    EXPECT_FALSE(dc.wakeAllowed(1.1));
    EXPECT_FALSE(dc.wakeAllowed(1.49));
    EXPECT_TRUE(dc.wakeAllowed(1.5));
    EXPECT_TRUE(dc.wakeAllowed(2.0));
    EXPECT_EQ(dc.stats().wakesDeferred, 2u);

    // An unreachable threshold (negative estimate) must not deadlock
    // the node: the gate stays open.
    dc.noteSleepEnter(3.0, -1.0);
    EXPECT_TRUE(dc.wakeAllowed(3.0));
}

TEST(DefenseTest, RelapseDoublesCalmDwell)
{
    // The adversarial-search signature: a duty-cycled tone that goes
    // quiet for exactly one calm dwell, lets the controller de-escalate
    // to nominal, then re-attacks.  Each such relapse must double the
    // dwell so the attacker's required off-time grows geometrically.
    DefenseConfig config = fastConfig();
    config.relapseWindowSamples = 64;
    DefenseController dc(config, PlantModel{});
    double t = 0.0, v = 3.0;

    auto escalate = [&] {
        while (dc.mode() == Mode::kNominal)
            violate(dc, t, v);
    };
    auto calmToNominal = [&] {
        int n = 0;
        while (dc.mode() != Mode::kNominal) {
            calm(dc, t, v);
            ++n;
        }
        return n;
    };

    escalate();
    const int firstDwell = calmToNominal();
    escalate();  // relapse #1: within the window of the de-escalation
    EXPECT_EQ(dc.stats().relapses, 1u);
    const int secondDwell = calmToNominal();
    // The doubled dwell dominates the decay samples, so the relapse
    // path takes measurably longer to calm down.
    EXPECT_GE(secondDwell, firstDwell + config.calmSamples);
    escalate();  // relapse #2 doubles again
    EXPECT_EQ(dc.stats().relapses, 2u);
    const int thirdDwell = calmToNominal();
    EXPECT_GE(thirdDwell, secondDwell + 2 * config.calmSamples);
}

TEST(DefenseTest, RelapseLevelIsCappedAndForgiven)
{
    DefenseConfig config = fastConfig();
    config.relapseWindowSamples = 64;
    config.relapseLevelCap = 2;
    DefenseController dc(config, PlantModel{});
    double t = 0.0, v = 3.0;

    for (int round = 0; round < 5; ++round) {
        while (dc.mode() == Mode::kNominal)
            violate(dc, t, v);
        while (dc.mode() != Mode::kNominal)
            calm(dc, t, v);
    }
    // 4 relapses happened but the dwell stops doubling at the cap.
    EXPECT_EQ(dc.stats().relapses, 4u);

    // A long clean stretch forgives the penalty: after it, escalating
    // again is no longer treated as a relapse-dwell marathon.  Relapse
    // *counting* still works (the de-escalation was recent relative to
    // a fresh attack), so measure via the dwell, not the counter.
    for (int i = 0; i < 64 * 64; ++i)
        calm(dc, t, v);
    while (dc.mode() == Mode::kNominal)
        violate(dc, t, v);
    int dwell = 0;
    while (dc.mode() != Mode::kNominal) {
        calm(dc, t, v);
        ++dwell;
    }
    // Forgiven to level 0, the fresh incident re-escalates one relapse
    // level (the counter window is sample-based), so the dwell is at
    // most the one-doubling cost — far below the capped 4x dwell.
    EXPECT_LT(dwell, 3 * 2 * config.calmSamples);
}

TEST(DefenseTest, RedoCreditGateTripsLedgerOnRedoOnlyCycles)
{
    // Each power cycle: one boot's waste, one rollback, one redo
    // commit, NO new progress.  Pre-hardening every redo earned a
    // boot-quantum credit, so debt stayed at zero forever; with the
    // gate the ledger integrates one quantum per cycle and trips.
    DefenseConfig config = fastConfig();
    config.energyDebtBudgetJ = 1e-3;
    config.rollbackBudgetPerRegion = 1000;  // isolate the ledger path
    PlantModel plant;
    plant.bootEnergyJ = 1e-4;
    DefenseController dc(config, plant);
    std::uint64_t commits = 0;
    for (int i = 0; i < 10; ++i) {
        dc.noteEnergyCost(0.01 * i, 1e-4);
        dc.noteRollback(0.01 * i + 1e-3, 3);
        dc.noteCommit(++commits);
    }
    EXPECT_GE(dc.stats().ratchetTrips, 1u);
    EXPECT_EQ(dc.mode(), Mode::kDegraded);

    // Control: the same cycles with genuine progress (two commits per
    // cycle) pay the debt down and never trip.
    DefenseController ok(config, plant);
    commits = 0;
    for (int i = 0; i < 10; ++i) {
        ok.noteEnergyCost(0.01 * i, 1e-4);
        ok.noteRollback(0.01 * i + 1e-3, 3);
        commits += 2;
        ok.noteCommit(commits);
    }
    EXPECT_EQ(ok.stats().ratchetTrips, 0u);
}

}  // namespace
}  // namespace gecko::defense
