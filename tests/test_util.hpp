#ifndef GECKO_TESTS_TEST_UTIL_HPP_
#define GECKO_TESTS_TEST_UTIL_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/pipeline.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/io_devices.hpp"
#include "sim/nvm.hpp"
#include "workloads/workloads.hpp"

namespace gecko::test {

/** Result of a failure-free ("golden") run. */
struct GoldenRun {
    std::uint64_t cycles = 0;
    std::vector<std::uint32_t> out0;
    std::vector<std::uint32_t> out2;
    std::vector<std::uint32_t> finalMemory;
};

/** Compile `name` for `scheme` with default pipeline config. */
inline compiler::CompiledProgram
compileWorkload(const std::string& name, compiler::Scheme scheme,
                const compiler::PipelineConfig& config = {})
{
    return compiler::compile(workloads::build(name), scheme, config);
}

/** Execute to completion with no power failures. */
inline GoldenRun
golden(const compiler::CompiledProgram& compiled, const std::string& name,
       std::size_t memWords = 16384)
{
    sim::Nvm nvm(memWords);
    sim::IoHub io;
    workloads::setupIo(name, io);
    GoldenRun run;
    run.cycles = sim::runToCompletion(compiled, nvm, io);
    run.out0 = io.output(0).values();
    run.out2 = io.output(2).values();
    run.finalMemory = nvm.data();
    return run;
}

}  // namespace gecko::test

#endif  // GECKO_TESTS_TEST_UTIL_HPP_
