#include <gtest/gtest.h>

#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "device/device_db.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

namespace gecko::sim {
namespace {

using attack::EmiSource;
using attack::RemoteRig;
using compiler::CompiledProgram;
using compiler::Scheme;
using device::DeviceDb;

struct Bench {
    CompiledProgram prog;
    energy::ConstantHarvester supply{3.3, 5.0};
    IoHub io;

    Bench(const std::string& name, Scheme scheme,
          compiler::PipelineConfig config = {})
        : prog(compiler::compile(workloads::build(name), scheme, config))
    {
        workloads::setupIo(name, io);
    }

    SimConfig simConfig() const
    {
        SimConfig c;
        c.cap.capacitanceF = 1e-3;
        c.cap.initialV = 3.3;
        return c;
    }
};

TEST(IntermittentSimTest, DcSupplyRunsContinuously)
{
    Bench bench("sensor_loop", Scheme::kNvp);
    IntermittentSim sim(bench.prog, DeviceDb::msp430fr5994(),
                        bench.simConfig(), bench.supply, bench.io);
    sim.run(0.5);

    EXPECT_GT(sim.machine().stats.completions, 50u);
    EXPECT_EQ(sim.stats.jitCheckpointsTorn, 0u);
    EXPECT_EQ(sim.stats.missedCheckpoints, 0u);
    EXPECT_EQ(sim.stats.reboots, 1u);  // only the initial power-up
    EXPECT_EQ(bench.io.output(0).conflicts(), 0u);
}

TEST(IntermittentSimTest, SquareWaveOutagesAreSurvivedByNvp)
{
    Bench bench("sensor_loop", Scheme::kNvp);
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.5, 0.5);  // 1 Hz outages
    IntermittentSim sim(bench.prog, DeviceDb::msp430fr5994(),
                        bench.simConfig(), wave, bench.io);
    sim.run(5.0);

    EXPECT_GT(sim.stats.reboots, 3u);
    EXPECT_GT(sim.stats.jitCheckpointsComplete, 3u);
    EXPECT_EQ(sim.stats.jitCheckpointsTorn, 0u);
    EXPECT_EQ(sim.stats.missedCheckpoints, 0u);
    EXPECT_GT(sim.machine().stats.completions, 100u);
    EXPECT_EQ(bench.io.output(0).conflicts(), 0u)
        << "JIT roll-forward corrupted the output stream";
    EXPECT_EQ(sim.geckoRuntime().stats.corruptedRestores, 0u);
}

TEST(IntermittentSimTest, SquareWaveOutagesAreSurvivedByGecko)
{
    compiler::PipelineConfig config;
    config.maxRegionCycles = 20000;
    Bench bench("sensor_loop", Scheme::kGecko, config);
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.5, 0.5);
    IntermittentSim sim(bench.prog, DeviceDb::msp430fr5994(),
                        bench.simConfig(), wave, bench.io);
    sim.run(5.0);

    EXPECT_GT(sim.machine().stats.completions, 100u);
    EXPECT_EQ(bench.io.output(0).conflicts(), 0u);
    // No attack: the hybrid stays in JIT mode.
    EXPECT_EQ(sim.geckoRuntime().stats.attackDetections, 0u);
    EXPECT_TRUE(sim.geckoRuntime().jitActive());
}

TEST(IntermittentSimTest, ResonantAttackCausesDosOnNvp)
{
    const auto& dev = DeviceDb::msp430fr5994();

    // Baseline: no attack.
    Bench base("sensor_loop", Scheme::kNvp);
    IntermittentSim clean(base.prog, dev, base.simConfig(), base.supply,
                          base.io);
    clean.run(0.25);
    std::uint64_t clean_completions = clean.machine().stats.completions;
    ASSERT_GT(clean_completions, 10u);

    // Attack at the 27 MHz resonance from 0.1 m (Table I conditions).
    Bench victim("sensor_loop", Scheme::kNvp);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource src(rig, 27e6, 35.0);
    IntermittentSim attacked(victim.prog, dev, victim.simConfig(),
                             victim.supply, victim.io);
    attacked.setEmiSource(&src);
    attacked.run(0.25);

    std::uint64_t victim_completions =
        attacked.machine().stats.completions;
    EXPECT_GT(attacked.stats.backupSignals, 50u)
        << "the attack should trigger false checkpoints";
    EXPECT_LT(victim_completions, clean_completions / 5)
        << "forward progress should collapse under attack";
}

TEST(IntermittentSimTest, OffResonanceAttackIsHarmless)
{
    const auto& dev = DeviceDb::msp430fr5994();
    Bench bench("sensor_loop", Scheme::kNvp);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource src(rig, 200e6, 35.0);  // way above the low-pass corner
    IntermittentSim sim(bench.prog, dev, bench.simConfig(), bench.supply,
                        bench.io);
    sim.setEmiSource(&src);
    sim.run(0.25);
    EXPECT_GT(sim.machine().stats.completions, 10u);
    EXPECT_EQ(sim.stats.jitCheckpointAttempts, 0u);
}

TEST(IntermittentSimTest, GeckoDetectsAndSurvivesTheAttack)
{
    const auto& dev = DeviceDb::msp430fr5994();
    compiler::PipelineConfig config;
    config.maxRegionCycles = 20000;

    Bench bench("sensor_loop", Scheme::kGecko, config);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource src(rig, 27e6, 35.0);
    IntermittentSim sim(bench.prog, dev, bench.simConfig(), bench.supply,
                        bench.io);
    sim.setEmiSource(&src);
    sim.run(0.25);

    EXPECT_GE(sim.geckoRuntime().stats.attackDetections, 1u);
    // Note: jitActive() may be momentarily true — §VI-F re-enable
    // attempts during a quiet stretch are expected and harmless; what
    // matters is detection plus sustained progress without corruption.
    EXPECT_GT(sim.machine().stats.completions, 10u)
        << "GECKO must keep making progress under attack";
    EXPECT_EQ(bench.io.output(0).conflicts(), 0u)
        << "GECKO must not corrupt data under attack";
}

TEST(IntermittentSimTest, GeckoReenablesJitAfterAttackEnds)
{
    const auto& dev = DeviceDb::msp430fr5994();
    compiler::PipelineConfig config;
    config.maxRegionCycles = 20000;

    Bench bench("sensor_loop", Scheme::kGecko, config);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource src(rig, 27e6, 35.0);
    attack::AttackSchedule sched({{0.02, 0.4, 27e6, 35.0}});

    // Re-enable happens at reboot time (§VI-F), so run on intermittent
    // power where natural outages continue after the attack stops.
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.25, 0.25);
    IntermittentSim sim(bench.prog, dev, bench.simConfig(), wave,
                        bench.io);
    sim.setEmiSource(&src);
    sim.setAttackSchedule(&sched);
    sim.run(2.0);

    EXPECT_GE(sim.geckoRuntime().stats.attackDetections, 1u);
    EXPECT_GE(sim.geckoRuntime().stats.jitReenables, 1u);
    EXPECT_TRUE(sim.geckoRuntime().jitActive());
    EXPECT_EQ(bench.io.output(0).conflicts(), 0u);
}

TEST(IntermittentSimTest, ComparatorMonitorSuffersWorseDos)
{
    const auto& dev = DeviceDb::msp430fr5994();

    auto run_with = [&](analog::MonitorKind kind, double freq) {
        Bench bench("sensor_loop", Scheme::kNvp);
        SimConfig config = bench.simConfig();
        config.monitorKind = kind;
        RemoteRig rig(dev, kind, 0.1);
        EmiSource src(rig, freq, 35.0);
        IntermittentSim sim(bench.prog, dev, config, bench.supply,
                            bench.io);
        sim.setEmiSource(&src);
        sim.run(0.2);
        return sim.machine().stats.completions;
    };

    std::uint64_t adc = run_with(analog::MonitorKind::kAdc, 27e6);
    std::uint64_t comp = run_with(analog::MonitorKind::kComparator, 5e6);
    // Table I: comparator R_min is two orders of magnitude below ADC's.
    EXPECT_LT(comp, adc / 4 + 2);
}

TEST(IntermittentSimTest, MaskedBackupWindowCausesCheckpointFailures)
{
    // Harvest-off decline under attack: EMI both masks the backup window
    // and triggers fake wakes inside (V_off, V_backup), producing torn
    // or missed checkpoints (the paper's data-corruption vector).
    const auto& dev = DeviceDb::msp430fr5994();
    Bench bench("sensor_loop", Scheme::kNvp);
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.2, 0.8);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource src(rig, 27e6, 35.0);

    SimConfig config = bench.simConfig();
    IntermittentSim sim(bench.prog, dev, config, wave, bench.io);
    sim.setEmiSource(&src);
    sim.run(5.0);

    EXPECT_GT(sim.checkpointFailureRate(), 0.0);
}

TEST(IntermittentSimTest, RunUntilCompletionsWorks)
{
    Bench bench("sensor_loop", Scheme::kNvp);
    IntermittentSim sim(bench.prog, DeviceDb::msp430fr5994(),
                        bench.simConfig(), bench.supply, bench.io);
    EXPECT_TRUE(sim.runUntilCompletions(5, 2.0));
    EXPECT_GE(sim.machine().stats.completions, 5u);
}

}  // namespace
}  // namespace gecko::sim
