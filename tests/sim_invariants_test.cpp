#include <gtest/gtest.h>

#include <cmath>

#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "device/device_db.hpp"
#include "energy/capacitor.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Simulator-level invariants: determinism, energy bookkeeping, the
 * quiet-stride speed knob, and the JIT abort/veto semantics.
 */

namespace gecko::sim {
namespace {

using attack::EmiSource;
using attack::RemoteRig;
using compiler::Scheme;
using device::DeviceDb;

struct RunStats {
    std::uint64_t cycles, completions, reboots, attempts;
};

RunStats
runOnce(int quiet_stride, bool attacked, double seconds = 0.3)
{
    const auto& dev = DeviceDb::msp430fr5994();
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      Scheme::kGecko);
    IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.1, 0.1);
    SimConfig config;
    config.quietStride = quiet_stride;
    IntermittentSim simulation(compiled, dev, config, wave, io);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource source(rig, 27e6, 35.0);
    if (attacked)
        simulation.setEmiSource(&source);
    simulation.run(seconds);
    return {simulation.machine().stats.cycles,
            simulation.machine().stats.completions,
            simulation.stats.reboots, simulation.stats.jitCheckpointAttempts};
}

TEST(SimInvariantsTest, RunsAreDeterministic)
{
    RunStats a = runOnce(64, true);
    RunStats b = runOnce(64, true);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.reboots, b.reboots);
    EXPECT_EQ(a.attempts, b.attempts);
}

TEST(SimInvariantsTest, QuietStrideIsOnlyASpeedKnob)
{
    // Without an attack the stride must not change the outcome beyond
    // small threshold-crossing latency differences.
    RunStats fine = runOnce(1, false);
    RunStats coarse = runOnce(64, false);
    ASSERT_GT(fine.completions, 10u);
    double ratio = static_cast<double>(coarse.completions) /
                   static_cast<double>(fine.completions);
    EXPECT_NEAR(ratio, 1.0, 0.1);
    EXPECT_EQ(fine.reboots, coarse.reboots);
}

TEST(SimInvariantsTest, ExecutionNeverExceedsTheClockRate)
{
    RunStats r = runOnce(64, true, 0.5);
    const auto& dev = DeviceDb::msp430fr5994();
    EXPECT_LE(r.cycles,
              static_cast<std::uint64_t>(0.5 * dev.power.clockHz * 1.01));
}

TEST(SimInvariantsTest, EnergyConservationOnDischarge)
{
    energy::CapacitorConfig config;
    config.capacitanceF = 1e-3;
    config.leakageS = 0.0;
    energy::Capacitor cap(config);
    double e0 = cap.energy();
    double drawn = 0;
    for (int i = 0; i < 1000; ++i)
        drawn += cap.discharge(1e-6);
    EXPECT_NEAR(e0 - cap.energy(), drawn, 1e-12);
}

TEST(SimInvariantsTest, VetoedCheckpointLeavesPreviousImageIntact)
{
    // A wake inside the abort window cancels the checkpoint; the JIT
    // area must still hold the previous complete image with the old ACK.
    const auto& dev = DeviceDb::msp430fr5994();
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      Scheme::kNvp);
    IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    SimConfig config;
    IntermittentSim simulation(compiled, dev, config, supply, io);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource source(rig, 27e6, 35.0);
    simulation.setEmiSource(&source);
    simulation.run(0.1);

    ASSERT_GT(simulation.stats.jitCheckpointsAborted, 0u)
        << "the resonant attack should veto some checkpoints";
    // ACK parity must match the number of *completed* checkpoints.
    EXPECT_EQ(simulation.nvm().jit[Nvm::kJitAckIndex],
              simulation.stats.jitCheckpointsComplete % 2);
}

TEST(SimInvariantsTest, EqualBufferedEnergyAcrossCapacitorSizes)
{
    // The Fig. 15 configuration invariant: adjusting V_backup keeps the
    // usable window energy constant.
    const double v_on = 3.0;
    const double reference = energy::bufferedEnergy(1e-3, v_on, 2.2);
    for (double c : {2e-3, 5e-3, 10e-3}) {
        double v_backup = std::sqrt(v_on * v_on - 2.0 * reference / c);
        EXPECT_NEAR(energy::bufferedEnergy(c, v_on, v_backup), reference,
                    1e-9);
    }
}

TEST(SimInvariantsTest, AttackScheduleTogglesTheSource)
{
    const auto& dev = DeviceDb::msp430fr5994();
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      Scheme::kNvp);
    IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    SimConfig config;
    IntermittentSim simulation(compiled, dev, config, supply, io);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource source(rig, 27e6, 35.0);
    attack::AttackSchedule schedule({{0.05, 0.10, 27e6, 35.0}});
    simulation.setEmiSource(&source);
    simulation.setAttackSchedule(&schedule);

    simulation.run(0.05);
    std::uint64_t before = simulation.stats.backupSignals;
    EXPECT_EQ(before, 0u) << "no signals before the window";
    simulation.run(0.05);
    std::uint64_t during = simulation.stats.backupSignals - before;
    EXPECT_GT(during, 0u) << "signals inside the window";
    simulation.run(0.05);
    // After the window the tone is keyed off.
    EXPECT_FALSE(source.enabled());
}

TEST(SimInvariantsTest, NvpUnderAttackShowsDataCorruption)
{
    // The paper's §IV-B2 claim end to end: on intermittent power under a
    // resonant tone, NVP accumulates checkpoint failures and restores
    // inconsistent images; GECKO in the same environment does not.
    const auto& dev = DeviceDb::msp430fr5994();
    struct Outcome {
        double failureRate;
        std::uint64_t protocolFailures;  // torn + missed checkpoints
        std::uint64_t corruptedRestores;
    };
    auto run_scheme = [&](Scheme scheme) {
        auto compiled = compiler::compile(
            workloads::build("sensor_loop"), scheme);
        IoHub io;
        workloads::setupIo("sensor_loop", io);
        energy::SquareWaveHarvester wave(3.3, 5.0, 0.3, 0.7);
        SimConfig config;
        IntermittentSim simulation(compiled, dev, config, wave, io);
        RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
        EmiSource source(rig, 27e6, 35.0);
        simulation.setEmiSource(&source);
        simulation.run(4.0);
        return Outcome{
            simulation.checkpointFailureRate(),
            simulation.stats.jitCheckpointsTorn +
                simulation.stats.missedCheckpoints,
            simulation.geckoRuntime().stats.corruptedRestores};
    };

    Outcome nvp = run_scheme(Scheme::kNvp);
    Outcome gecko = run_scheme(Scheme::kGecko);

    EXPECT_GT(nvp.failureRate, 0.05)
        << "NVP should fail a noticeable share of checkpoints";
    EXPECT_GT(nvp.protocolFailures, 0u)
        << "NVP should tear or miss at least one checkpoint (the data-"
           "corruption vector: the next restore is stale/inconsistent)";
    EXPECT_EQ(gecko.corruptedRestores, 0u)
        << "GECKO must never roll forward from a stale image";
}

TEST(SimInvariantsTest, BrownOutLockoutGatesFakeWakes)
{
    // With the capacitor held below V_off + lockout, wake events must
    // not boot the machine.
    const auto& dev = DeviceDb::msp430fr5994();
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      Scheme::kNvp);
    IoHub io;
    workloads::setupIo("sensor_loop", io);
    // Harvester too weak to ever lift V above the lockout.
    energy::ConstantHarvester dead(dev.vOff + 0.01, 5.0);
    SimConfig config;
    config.cap.initialV = dev.vOff;  // start below the lockout
    IntermittentSim simulation(compiled, dev, config, dead, io);
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    EmiSource source(rig, 27e6, 35.0);
    simulation.setEmiSource(&source);
    simulation.run(0.05);
    EXPECT_EQ(simulation.stats.reboots, 0u)
        << "forged wakes below the lockout must not boot";
    EXPECT_EQ(simulation.machine().stats.cycles, 0u);
}

}  // namespace
}  // namespace gecko::sim
