#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "adversary/knobs.hpp"
#include "adversary/optimizer.hpp"
#include "exp/rng.hpp"
#include "exp/thread_pool.hpp"

/**
 * @file
 * The adversarial attack optimizer (DESIGN.md §16): knob-space
 * mechanics, the integer denial objective, and the end-to-end search
 * contracts — same seed emits the byte-identical best-attack spec, the
 * journaled winner replays to exactly its journaled score, and the
 * clean baseline never escalates the hardened controller (zero false
 * positives) even under the strict preset.
 */

namespace gecko {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch dir per test, removed on destruction. */
class TempDir
{
  public:
    explicit TempDir(const std::string& tag)
        : path_(fs::temp_directory_path() /
                ("gecko_adversary_" + tag + "_" +
                 std::to_string(::getpid())))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Tiny but real search budget: one coordinate round, one restart. */
adversary::SearchConfig
tinyConfig(const std::string& dir, const std::string& defense)
{
    adversary::SearchConfig config;
    config.dir = dir;
    config.defense = defense;
    config.rounds = 1;
    config.restarts = 1;
    config.seedsPerCandidate = 1;
    config.seed = 11;
    config.simSeconds = 0.01;
    config.sliceSimSeconds = 0.0025;
    return config;
}

// ---------------------------------------------------------------------
// Knob space
// ---------------------------------------------------------------------

TEST(AdversaryKnobs, JsonRoundTripsEveryField)
{
    adversary::AttackKnobs k;
    k.freqHz = 13.625e6;
    k.powerDbm = 31.5;
    k.dutyPeriodS = 0.0075;
    k.dutyOnFrac = 0.375;
    k.phaseS = 0.0031;
    k.envelopeStepDbm = 4.25;
    k.gridCell = 53;

    adversary::AttackKnobs back;
    ASSERT_TRUE(adversary::knobsFromJson(adversary::knobsJson(k), &back));
    EXPECT_EQ(adversary::knobsJson(back), adversary::knobsJson(k));
    EXPECT_DOUBLE_EQ(back.freqHz, k.freqHz);
    EXPECT_DOUBLE_EQ(back.dutyOnFrac, k.dutyOnFrac);
    EXPECT_EQ(back.gridCell, k.gridCell);

    adversary::AttackKnobs junk;
    EXPECT_FALSE(adversary::knobsFromJson("{\"freq_hz\":}", &junk));
}

TEST(AdversaryKnobs, PerturbStaysInBoundsOnEveryCoordinate)
{
    const adversary::KnobBounds b;
    exp::Rng rng(exp::mixSeed(3, 99));
    for (int trial = 0; trial < 200; ++trial) {
        adversary::AttackKnobs k = adversary::randomKnobs(rng, b);
        for (int coord = 0; coord < adversary::kKnobCount; ++coord) {
            for (int dir : {-1, +1}) {
                const adversary::AttackKnobs p =
                    adversary::perturb(k, b, coord, dir, 1.0);
                EXPECT_GE(p.freqHz, b.freqMinHz);
                EXPECT_LE(p.freqHz, b.freqMaxHz);
                EXPECT_GE(p.powerDbm, b.powerMinDbm);
                EXPECT_LE(p.powerDbm, b.powerMaxDbm);
                EXPECT_GE(p.dutyOnFrac, b.dutyOnFracMin);
                EXPECT_LE(p.dutyOnFrac, 1.0);
                EXPECT_GE(p.phaseS, 0.0);
                EXPECT_LE(p.phaseS, b.phaseMaxS);
                EXPECT_GE(p.gridCell, 0);
                EXPECT_LT(p.gridCell, b.cells());
            }
        }
    }
}

TEST(AdversaryKnobs, DenialScoreWeighsDeficitsAndWreckage)
{
    campaign::GroupTotals clean;
    clean.completions = 10;
    clean.commits = 100;
    campaign::GroupTotals attacked;
    attacked.completions = 7;
    attacked.commits = 60;
    attacked.rollbacks = 2;
    attacked.retriesExhausted = 1;
    attacked.hardDeaths = 1;
    // 1000*3 + 100*40 + 50*2 + 500*1 + 2000*1 = 9600.
    EXPECT_EQ(adversary::denialScore(clean, attacked), 9600u);
    // More progress than clean = no deficit contribution.
    attacked.completions = 12;
    attacked.commits = 120;
    attacked.rollbacks = 0;
    attacked.retriesExhausted = 0;
    attacked.hardDeaths = 0;
    EXPECT_EQ(adversary::denialScore(clean, attacked), 0u);
}

// ---------------------------------------------------------------------
// Search contracts
// ---------------------------------------------------------------------

TEST(AdversarySearch, SameSeedEmitsByteIdenticalBestSpec)
{
    TempDir a("det_a");
    TempDir b("det_b");
    adversary::SearchReport ra =
        adversary::runSearch(tinyConfig(a.str(), "static"),
                             exp::ThreadPool::global());
    adversary::SearchReport rb =
        adversary::runSearch(tinyConfig(b.str(), "static"),
                             exp::ThreadPool::global());
    ASSERT_TRUE(ra.complete);
    ASSERT_TRUE(rb.complete);
    EXPECT_EQ(ra.best.score, rb.best.score);
    EXPECT_EQ(adversary::knobsJson(ra.best.knobs),
              adversary::knobsJson(rb.best.knobs));
    const std::string specA = slurp(a.str() + "/best_spec.json");
    const std::string specB = slurp(b.str() + "/best_spec.json");
    ASSERT_FALSE(specA.empty());
    EXPECT_EQ(specA, specB);
    EXPECT_EQ(specA, ra.bestSpecJson);
}

TEST(AdversarySearch, RerunOnJournaledDirPinsTheSameWinner)
{
    TempDir dir("pin");
    const adversary::SearchConfig config = tinyConfig(dir.str(), "static");
    adversary::SearchReport first =
        adversary::runSearch(config, exp::ThreadPool::global());
    ASSERT_TRUE(first.complete);
    ASSERT_TRUE(first.replayMatches)
        << "journaled best must replay to its journaled score";
    EXPECT_GT(first.best.score, 0u)
        << "the undefended config must be attackable";
    const std::string spec1 = slurp(dir.str() + "/best_spec.json");

    // A second run over the same durable dir is a pure replay: every
    // round is journaled, the standalone best evaluation is already a
    // completed campaign, and the emitted spec must not change.
    adversary::SearchReport second =
        adversary::runSearch(config, exp::ThreadPool::global());
    ASSERT_TRUE(second.complete);
    EXPECT_TRUE(second.replayMatches);
    EXPECT_EQ(second.best.score, first.best.score);
    EXPECT_EQ(slurp(dir.str() + "/best_spec.json"), spec1);
}

TEST(AdversarySearch, CleanBaselineNeverEscalatesStrictPreset)
{
    // Regression pin for the edge-skew fix: the clean arm carries the
    // harvester outage environment, whose restore ramps make the two
    // monitors flag the wake crossing one sample apart.  Under the
    // strict preset that skew used to score as forgery (4 escalations
    // per run); reconciliation must keep the clean arm at zero.
    TempDir dir("strict");
    adversary::SearchReport rep =
        adversary::runSearch(tinyConfig(dir.str(), "strict"),
                             exp::ThreadPool::global());
    ASSERT_TRUE(rep.complete);
    EXPECT_TRUE(rep.replayMatches);
    EXPECT_EQ(rep.cleanTotals.escalations, 0u)
        << "clean-run false positives under strict";
}

}  // namespace
}  // namespace gecko
