#include <gtest/gtest.h>

#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "ir/builder.hpp"

namespace gecko::compiler {
namespace {

using ir::Program;
using ir::ProgramBuilder;

Program
diamond()
{
    // B0: cond -> B1 or B2; B1 -> B3; B2 -> B3; B3: halt
    ProgramBuilder b("diamond");
    b.movi(1, 1)
        .beq(1, 0, "left")   // B0
        .movi(2, 2)          // B1 (fall-through)
        .jmp("join")
        .label("left")
        .movi(2, 3)          // B2
        .label("join")
        .out(0, 2)           // B3
        .halt();
    return b.take();
}

Program
loop()
{
    ProgramBuilder b("loop");
    b.movi(1, 10)          // B0
        .label("head")
        .subi(1, 1, 1)     // B1 (loop header)
        .bne(1, 0, "head")
        .halt();           // B2
    return b.take();
}

TEST(CfgTest, DiamondStructure)
{
    Program p = diamond();
    Cfg cfg = Cfg::build(p);
    ASSERT_EQ(cfg.numBlocks(), 4u);
    const BasicBlock& b0 = cfg.block(0);
    EXPECT_EQ(b0.succs.size(), 2u);
    // Both sides join.
    BlockId join = cfg.blockOf(p.labelPos(*p.findLabel("join")));
    EXPECT_EQ(cfg.block(join).preds.size(), 2u);
    EXPECT_FALSE(cfg.isLoopHeader(join));
}

TEST(CfgTest, LoopHeaderDetection)
{
    Program p = loop();
    Cfg cfg = Cfg::build(p);
    BlockId head = cfg.blockOf(p.labelPos(*p.findLabel("head")));
    EXPECT_TRUE(cfg.isLoopHeader(head));
    // The header has two preds: entry and the back edge.
    EXPECT_EQ(cfg.block(head).preds.size(), 2u);
}

TEST(CfgTest, ReversePostOrderStartsAtEntry)
{
    Program p = diamond();
    Cfg cfg = Cfg::build(p);
    ASSERT_FALSE(cfg.reversePostOrder().empty());
    EXPECT_EQ(cfg.reversePostOrder().front(), cfg.entry());
    EXPECT_EQ(cfg.reversePostOrder().size(), cfg.numBlocks());
}

TEST(CfgTest, BlockOfMapsEveryInstruction)
{
    Program p = diamond();
    Cfg cfg = Cfg::build(p);
    for (std::size_t i = 0; i < p.size(); ++i) {
        BlockId b = cfg.blockOf(i);
        EXPECT_GE(i, cfg.block(b).first);
        EXPECT_LE(i, cfg.block(b).last);
    }
}

TEST(CfgTest, CallHasTargetAndFallthroughSuccessors)
{
    ProgramBuilder b("call");
    b.movi(1, 1)
        .call("fn")
        .halt()
        .label("fn")
        .ret();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    BlockId caller = cfg.blockOf(1);
    EXPECT_EQ(cfg.block(caller).succs.size(), 2u);
    BlockId fn = cfg.blockOf(p.labelPos(*p.findLabel("fn")));
    EXPECT_TRUE(cfg.block(fn).succs.empty());  // ret
}

TEST(DominatorsTest, DiamondDominance)
{
    Program p = diamond();
    Cfg cfg = Cfg::build(p);
    Dominators dom = Dominators::build(cfg);

    BlockId entry = cfg.entry();
    BlockId join = cfg.blockOf(p.labelPos(*p.findLabel("join")));
    BlockId left = cfg.blockOf(p.labelPos(*p.findLabel("left")));

    EXPECT_TRUE(dom.dominates(entry, join));
    EXPECT_TRUE(dom.dominates(entry, left));
    EXPECT_FALSE(dom.dominates(left, join));
    EXPECT_TRUE(dom.dominates(join, join));
    EXPECT_EQ(dom.idom(join), entry);
}

TEST(DominatorsTest, InstructionLevelDominance)
{
    Program p = diamond();
    Cfg cfg = Cfg::build(p);
    Dominators dom = Dominators::build(cfg);

    // Entry instruction dominates everything.
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_TRUE(dom.dominatesInstr(cfg, 0, i));
    // Within a block, order decides.
    EXPECT_TRUE(dom.dominatesInstr(cfg, 0, 1));
    EXPECT_FALSE(dom.dominatesInstr(cfg, 1, 0));
    // A branch side does not dominate the join.
    std::size_t left_pos = p.labelPos(*p.findLabel("left"));
    std::size_t join_pos = p.labelPos(*p.findLabel("join"));
    EXPECT_FALSE(dom.dominatesInstr(cfg, left_pos, join_pos));
}

TEST(DominatorsTest, LoopHeaderDominatesBody)
{
    Program p = loop();
    Cfg cfg = Cfg::build(p);
    Dominators dom = Dominators::build(cfg);
    BlockId head = cfg.blockOf(p.labelPos(*p.findLabel("head")));
    BlockId exit = cfg.blockOf(p.size() - 1);
    EXPECT_TRUE(dom.dominates(head, exit));
}

}  // namespace
}  // namespace gecko::compiler
