#include <gtest/gtest.h>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "device/device_db.hpp"

namespace gecko {
namespace {

using attack::AttackSchedule;
using attack::DpiPoint;
using attack::DpiRig;
using attack::EmiSource;
using attack::RemoteRig;
using device::DeviceDb;

TEST(DeviceDbTest, HasAllNineTableOneBoards)
{
    EXPECT_EQ(DeviceDb::all().size(), 9u);
    const char* names[] = {
        "MSP430FR2311", "MSP430FR2433", "MSP430FR4133",
        "MSP430F5529",  "MSP430FR5739", "MSP430FR5994",
        "MSP430FR6989", "MSP432P",      "STM32L552ZE",
    };
    for (const char* n : names)
        EXPECT_NO_THROW(DeviceDb::byName(n));
    EXPECT_THROW(DeviceDb::byName("ATmega328"), std::out_of_range);
}

TEST(DeviceDbTest, MonitorInventoryMatchesTableOne)
{
    EXPECT_FALSE(DeviceDb::byName("MSP430FR2311").hasComparatorMonitor);
    EXPECT_TRUE(DeviceDb::byName("MSP430FR5994").hasComparatorMonitor);
    EXPECT_TRUE(DeviceDb::byName("MSP430FR6989").hasComparatorMonitor);
    EXPECT_TRUE(DeviceDb::byName("STM32L552ZE").hasComparatorMonitor);
    for (const auto& dev : DeviceDb::all())
        EXPECT_TRUE(dev.hasAdcMonitor);
}

TEST(DeviceDbTest, Msp430FamilyResonatesNear27MHz)
{
    for (const auto& dev : DeviceDb::all()) {
        if (dev.name.rfind("MSP430", 0) != 0)
            continue;
        double g27 = dev.adcRemote.gainAt(27e6);
        double g120 = dev.adcRemote.gainAt(120e6);
        EXPECT_GT(g27, 5 * g120) << dev.name;
    }
    // The STM32 resonates near 17 MHz instead.
    const auto& stm = DeviceDb::byName("STM32L552ZE");
    EXPECT_GT(stm.adcRemote.gainAt(17e6), stm.adcRemote.gainAt(27e6));
}

TEST(DeviceDbTest, Fr5994ComparatorPathResonatesAt5And6MHz)
{
    const auto& dev = DeviceDb::msp430fr5994();
    double g5 = dev.compRemote.gainAt(5e6);
    double g6 = dev.compRemote.gainAt(6e6);
    double g27 = dev.compRemote.gainAt(27e6);
    EXPECT_GT(g5, g27);
    EXPECT_GT(g6, g27);
}

TEST(DeviceDbTest, MonitorsInstantiable)
{
    const auto& dev = DeviceDb::msp430fr5994();
    auto adc = dev.makeMonitor(analog::MonitorKind::kAdc);
    auto comp = dev.makeMonitor(analog::MonitorKind::kComparator);
    ASSERT_NE(adc, nullptr);
    ASSERT_NE(comp, nullptr);
    EXPECT_LT(comp->sampleIntervalS(), adc->sampleIntervalS());
}

TEST(RigTest, P2CouplesWiderThanP1)
{
    const auto& dev = DeviceDb::msp430fr5994();
    DpiRig p1(dev, DpiPoint::kP1);
    DpiRig p2(dev, DpiPoint::kP2);
    // Off the resonance, P2's broadband floor still couples.
    double off_p1 = p1.amplitude(10e6, 20.0);
    double off_p2 = p2.amplitude(10e6, 20.0);
    EXPECT_GT(off_p2, 2 * off_p1);
}

TEST(RigTest, RemoteAmplitudeDropsWithDistance)
{
    const auto& dev = DeviceDb::msp430fr5994();
    RemoteRig near(dev, analog::MonitorKind::kAdc, 0.5);
    RemoteRig far(dev, analog::MonitorKind::kAdc, 5.0);
    EXPECT_GT(near.amplitude(27e6, 35.0), far.amplitude(27e6, 35.0));
}

TEST(EmiSourceTest, ToneAndEnable)
{
    const auto& dev = DeviceDb::msp430fr5994();
    RemoteRig rig(dev, analog::MonitorKind::kAdc, 5.0);
    EmiSource src(rig, 27e6, 35.0);
    EXPECT_GT(src.amplitude(), 0.0);

    // Sine at t = period/4 is (nearly — ppm clock skew) the peak.
    double quarter = 0.25 / 27e6;
    EXPECT_NEAR(src.voltageAt(quarter), src.amplitude(),
                1e-6 * src.amplitude());
    EXPECT_NEAR(src.voltageAt(0.0), 0.0, 1e-6);

    src.setEnabled(false);
    EXPECT_EQ(src.voltageAt(quarter), 0.0);
    EXPECT_EQ(src.amplitude(), 0.0);

    src.setEnabled(true);
    src.setTone(120e6, 35.0);
    EXPECT_LT(src.amplitude(), 0.05);  // off resonance
}

TEST(AttackScheduleTest, WindowsActivate)
{
    AttackSchedule sched({{1.0, 2.0, 27e6, 35.0}, {5.0, 6.0, 17e6, 20.0}});
    EXPECT_FALSE(sched.activeAt(0.5).has_value());
    ASSERT_TRUE(sched.activeAt(1.5).has_value());
    EXPECT_EQ(sched.activeAt(1.5)->freqHz, 27e6);
    EXPECT_FALSE(sched.activeAt(2.0).has_value());  // half-open
    EXPECT_EQ(sched.activeAt(5.5)->powerDbm, 20.0);
}

TEST(AttackScheduleTest, PaperScenarios)
{
    // Scenario (a): no attack.
    EXPECT_TRUE(AttackSchedule::scenario('a', 1.0).windows().empty());
    // Scenario (f): attacks at minutes 10, 25, 40.
    AttackSchedule f = AttackSchedule::scenario('f', 2.0, 5.0);
    ASSERT_EQ(f.windows().size(), 3u);
    EXPECT_DOUBLE_EQ(f.windows()[0].startS, 20.0);
    EXPECT_DOUBLE_EQ(f.windows()[0].endS, 30.0);
    EXPECT_DOUBLE_EQ(f.windows()[2].startS, 80.0);
    EXPECT_THROW(AttackSchedule::scenario('z', 1.0), std::invalid_argument);
    EXPECT_EQ(AttackSchedule::scenarioDescription('a'), "no attack");
    EXPECT_NE(AttackSchedule::scenarioDescription('d').find("20"),
              std::string::npos);
}

}  // namespace
}  // namespace gecko
