#include <gtest/gtest.h>

#include "exp/rng.hpp"
#include "fault/campaign.hpp"
#include "fault/spec.hpp"

/**
 * @file
 * Declarative scenario specs (src/fault/spec.hpp): strict parsing with
 * field-path diagnostics, canonical round-trip stability, seed
 * precedence, and the equivalence guarantee — a spec-driven campaign is
 * byte-identical to the same campaign configured through flags.
 */

namespace gecko::fault {
namespace {

// The global seed latches at first use, so the ambient-precedence test
// stages a known value before main() runs (static init order within
// this TU is top-down and nothing earlier touches globalSeed()).
const bool g_seedStaged = [] {
    exp::setGlobalSeed(42);
    return true;
}();

FaultSpec
fullSpec()
{
    FaultSpec spec;
    spec.name = "round-trip";
    spec.hasSeed = true;
    spec.seed = 0xdeadbeefcafef00dull;
    spec.hasCampaign = true;
    spec.cases = 48;
    spec.corpusPerGroup = 2;
    spec.workloads = {"crc16", "sensor_loop"};
    spec.schemes = {compiler::Scheme::kNvp, compiler::Scheme::kGecko};
    spec.injectors = {InjectorKind::kBitFlip, InjectorKind::kInstrSkip,
                      InjectorKind::kOperandFlip};
    spec.simBudgetS = 0.75;
    spec.watchdog = 123456;
    spec.hasScenario = true;
    spec.scenario.kind = "burst";
    spec.scenario.freqHz = 27e6;
    spec.scenario.powerDbm = 35.0;
    spec.scenario.gridRows = 8;
    spec.scenario.gridCols = 8;
    spec.scenario.gridRow = 3;
    spec.scenario.gridCol = 5;
    spec.scenario.burstCount = 3;
    spec.scenario.burstOnS = 0.004;
    spec.scenario.burstGapS = 0.003;
    spec.hasEngine = true;
    spec.devices = {"MSP430FR5994"};
    spec.seeds = 2;
    spec.simS = 0.02;
    spec.sliceS = 0.005;
    return spec;
}

TEST(SpecRoundTrip, SerializeParseSerializeIsByteStable)
{
    const std::string first = serializeSpec(fullSpec());
    FaultSpec reparsed;
    std::string error;
    ASSERT_TRUE(parseSpec(first, &reparsed, &error)) << error;
    const std::string second = serializeSpec(reparsed);
    EXPECT_EQ(first, second);

    // And a third generation for good measure: the canonical form is a
    // fixed point, not merely a 2-cycle.
    FaultSpec third;
    ASSERT_TRUE(parseSpec(second, &third, &error)) << error;
    EXPECT_EQ(second, serializeSpec(third));
}

TEST(SpecRoundTrip, EveryFieldSurvives)
{
    const FaultSpec spec = fullSpec();
    FaultSpec out;
    std::string error;
    ASSERT_TRUE(parseSpec(serializeSpec(spec), &out, &error)) << error;
    EXPECT_EQ(out.name, spec.name);
    EXPECT_TRUE(out.hasSeed);
    EXPECT_EQ(out.seed, spec.seed);
    EXPECT_EQ(out.cases, spec.cases);
    EXPECT_EQ(out.corpusPerGroup, spec.corpusPerGroup);
    EXPECT_EQ(out.workloads, spec.workloads);
    EXPECT_EQ(out.schemes, spec.schemes);
    EXPECT_EQ(out.injectors, spec.injectors);
    EXPECT_DOUBLE_EQ(out.simBudgetS, spec.simBudgetS);
    EXPECT_EQ(out.watchdog, spec.watchdog);
    EXPECT_EQ(out.scenario.kind, spec.scenario.kind);
    EXPECT_DOUBLE_EQ(out.scenario.freqHz, spec.scenario.freqHz);
    EXPECT_EQ(out.scenario.gridRows, spec.scenario.gridRows);
    EXPECT_EQ(out.scenario.gridCol, spec.scenario.gridCol);
    EXPECT_EQ(out.scenario.burstCount, spec.scenario.burstCount);
    EXPECT_DOUBLE_EQ(out.scenario.burstOnS, spec.scenario.burstOnS);
    EXPECT_EQ(out.devices, spec.devices);
    EXPECT_EQ(out.seeds, spec.seeds);
    EXPECT_DOUBLE_EQ(out.simS, spec.simS);
    EXPECT_DOUBLE_EQ(out.sliceS, spec.sliceS);
}

TEST(SpecParse, UnknownFieldRejectedWithPath)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "campaign": {"casez": 10}})", &spec, &error));
    EXPECT_NE(error.find("$.campaign.casez"), std::string::npos) << error;

    EXPECT_FALSE(parseSpec(R"({"version": 1, "bogus": true})", &spec,
                           &error));
    EXPECT_NE(error.find("$.bogus"), std::string::npos) << error;
}

TEST(SpecParse, UnsupportedVersionRejected)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseSpec(R"({"version": 3})", &spec, &error));
    EXPECT_NE(error.find("version 3"), std::string::npos) << error;

    EXPECT_FALSE(parseSpec(R"({"name": "no-version"})", &spec, &error));
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

// --- schema v2: attack-schedule scripting ---

FaultSpec
fullSpecV2()
{
    FaultSpec spec = fullSpec();
    spec.version = 2;
    spec.scenario.dutyPeriodS = 0.004;
    spec.scenario.dutyOnFrac = 0.5;
    spec.scenario.phaseS = 0.001;
    spec.scenario.envelopeDbm = {35.0, 29.0, 35.0, 23.0};
    spec.scenario.outagePeriodS = 0.008;
    spec.scenario.outageOnFrac = 0.75;
    return spec;
}

TEST(SpecV2, RoundTripIsByteStableAndEveryFieldSurvives)
{
    const std::string first = serializeSpec(fullSpecV2());
    FaultSpec out;
    std::string error;
    ASSERT_TRUE(parseSpec(first, &out, &error)) << error;
    EXPECT_EQ(first, serializeSpec(out));

    EXPECT_EQ(out.version, 2);
    EXPECT_DOUBLE_EQ(out.scenario.dutyPeriodS, 0.004);
    EXPECT_DOUBLE_EQ(out.scenario.dutyOnFrac, 0.5);
    EXPECT_DOUBLE_EQ(out.scenario.phaseS, 0.001);
    ASSERT_EQ(out.scenario.envelopeDbm.size(), 4u);
    EXPECT_DOUBLE_EQ(out.scenario.envelopeDbm[1], 29.0);
    EXPECT_DOUBLE_EQ(out.scenario.outagePeriodS, 0.008);
    EXPECT_DOUBLE_EQ(out.scenario.outageOnFrac, 0.75);
}

TEST(SpecV2, V2FieldsRejectedInV1Specs)
{
    FaultSpec spec;
    std::string error;
    // The same scenario keys parse under version 2 ...
    ASSERT_TRUE(parseSpec(
        R"({"version": 2, "scenario": {"kind": "tone",
            "duty": {"period_s": 0.004, "on_frac": 0.5}}})",
        &spec, &error))
        << error;
    // ... and are refused, by field path, under version 1.
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "scenario": {"kind": "tone",
            "duty": {"period_s": 0.004, "on_frac": 0.5}}})",
        &spec, &error));
    EXPECT_NE(error.find("$.scenario.duty"), std::string::npos) << error;
    EXPECT_NE(error.find("requires version 2"), std::string::npos) << error;

    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "scenario": {"kind": "burst",
            "phase_s": 0.001}})",
        &spec, &error));
    EXPECT_NE(error.find("$.scenario.phase_s"), std::string::npos) << error;
}

TEST(SpecV2, ScheduleFieldsNeedAnAttackButOutageIsEnvironment)
{
    FaultSpec spec;
    std::string error;
    // Duty cycling a clean scenario is meaningless.
    EXPECT_FALSE(parseSpec(
        R"({"version": 2, "scenario": {"kind": "clean",
            "duty": {"period_s": 0.004, "on_frac": 0.5}}})",
        &spec, &error));
    EXPECT_NE(error.find("tone or burst"), std::string::npos) << error;
    // An outage environment without an attacker is legal.
    EXPECT_TRUE(parseSpec(
        R"({"version": 2, "scenario": {"kind": "clean",
            "outage": {"period_s": 0.008, "on_frac": 0.75}}})",
        &spec, &error))
        << error;
    // Range checks: on_frac must be a real fraction.
    EXPECT_FALSE(parseSpec(
        R"({"version": 2, "scenario": {"kind": "tone",
            "duty": {"period_s": 0.004, "on_frac": 1.5}}})",
        &spec, &error));
    EXPECT_FALSE(parseSpec(
        R"({"version": 2, "scenario": {"kind": "tone",
            "outage": {"period_s": 0.0, "on_frac": 0.5}}})",
        &spec, &error));
}

TEST(SpecParse, MalformedJsonAndDuplicateKeysRejected)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseSpec(R"({"version": 1)", &spec, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseSpec(R"({"version": 1, "version": 1})", &spec,
                           &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(SpecParse, BadNamesAndRangesRejected)
{
    FaultSpec spec;
    std::string error;
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "campaign": {"schemes": ["NOPE"]}})", &spec,
        &error));
    EXPECT_NE(error.find("NOPE"), std::string::npos) << error;
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "campaign": {"injectors": ["zapper"]}})", &spec,
        &error));
    EXPECT_NE(error.find("zapper"), std::string::npos) << error;
    // Cell outside the grid.
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "scenario": {"kind": "tone",
            "grid": {"rows": 4, "cols": 4, "row": 4, "col": 0}}})",
        &spec, &error));
    EXPECT_NE(error.find("grid"), std::string::npos) << error;
    // Grid on a clean scenario is meaningless.
    EXPECT_FALSE(parseSpec(
        R"({"version": 1, "scenario": {"kind": "clean",
            "grid": {"rows": 2, "cols": 2, "row": 0, "col": 0}}})",
        &spec, &error));
    EXPECT_NE(error.find("scenario"), std::string::npos) << error;
}

TEST(SpecSeed, SpecSeedOverridesAmbientSeed)
{
    ASSERT_TRUE(g_seedStaged);
    ASSERT_EQ(exp::globalSeed(), 42u);
    FaultSpec spec;
    spec.hasSeed = true;
    spec.seed = 777;
    EXPECT_EQ(resolveSeed(spec), 777u);
}

TEST(SpecSeed, AmbientSeedAppliesWhenSpecHasNone)
{
    ASSERT_EQ(exp::globalSeed(), 42u);
    FaultSpec spec;
    EXPECT_EQ(resolveSeed(spec), 42u);
    // The fall-back-to-1 arm is covered by applyToCampaign keeping the
    // deterministic default when nothing seeds the run; asserting it
    // here would need a second process (globalSeed latches once).
}

TEST(SpecCampaign, SpecDrivenRunMatchesFlagDrivenRun)
{
    const char* text = R"({
      "version": 1,
      "seed": 11,
      "campaign": {
        "cases": 24,
        "workloads": ["crc16"],
        "schemes": ["NVP", "GECKO"],
        "injectors": ["bitflip", "instrskip"],
        "sim_budget_s": 0.5
      }
    })";
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parseSpec(text, &spec, &error)) << error;

    CampaignConfig fromSpec;
    applyToCampaign(spec, &fromSpec);

    CampaignConfig byHand;
    byHand.seed = 11;
    byHand.cases = 24;
    byHand.workloads = {"crc16"};
    byHand.schemes = {compiler::Scheme::kNvp, compiler::Scheme::kGecko};
    byHand.injectorMix = {InjectorKind::kBitFlip,
                          InjectorKind::kInstrSkip};
    byHand.simTimeBudgetS = 0.5;

    CampaignResult a = runCampaign(fromSpec);
    CampaignResult b = runCampaign(byHand);
    EXPECT_EQ(a.report, b.report);
    EXPECT_EQ(a.corpus, b.corpus);
    EXPECT_EQ(a.cases.size(), b.cases.size());
}

}  // namespace
}  // namespace gecko::fault
