#include <gtest/gtest.h>

#include "ir/assembler.hpp"
#include "ir/disassembler.hpp"

namespace gecko::ir {
namespace {

TEST(AssemblerTest, ParsesBasicProgram)
{
    const char* src = R"(
; a tiny counter
        movi r1, 10
        movi r2, 0
loop:
        add  r2, r2, r1
        sub  r1, r1, #1
        movi r3, 0
        bne  r1, r3, loop
        out  0, r2
        halt
)";
    Program p = Assembler::assemble("counter", src);
    EXPECT_EQ(p.size(), 8u);
    EXPECT_EQ(p.at(0).op, Opcode::kMovi);
    EXPECT_EQ(p.at(0).imm, 10);
    EXPECT_EQ(p.at(3).op, Opcode::kSub);
    EXPECT_TRUE(p.at(3).useImm);
    EXPECT_EQ(p.labelPos(*p.findLabel("loop")), 2u);
    EXPECT_EQ(p.at(5).op, Opcode::kBne);
}

TEST(AssemblerTest, ParsesMemoryOperands)
{
    Program p = Assembler::assemble("mem", R"(
        load  r1, [r2+8]
        load  r3, [r4]
        store [r5+12], r6
        store [r7], r8
        halt
)");
    EXPECT_EQ(p.at(0).op, Opcode::kLoad);
    EXPECT_EQ(p.at(0).rs1, 2);
    EXPECT_EQ(p.at(0).imm, 8);
    EXPECT_EQ(p.at(1).imm, 0);
    EXPECT_EQ(p.at(2).op, Opcode::kStore);
    EXPECT_EQ(p.at(2).rs1, 5);
    EXPECT_EQ(p.at(2).rs2, 6);
    EXPECT_EQ(p.at(2).imm, 12);
}

TEST(AssemblerTest, ParsesHexAndNegativeImmediates)
{
    Program p = Assembler::assemble("imm", R"(
        movi r1, 0xff
        movi r2, -5
        and  r3, r1, #0x0F
        halt
)");
    EXPECT_EQ(p.at(0).imm, 255);
    EXPECT_EQ(p.at(1).imm, -5);
    EXPECT_EQ(p.at(2).imm, 15);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers)
{
    try {
        Assembler::assemble("bad", "movi r1, 1\nbogus r2\nhalt\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line, 2);
    }
}

TEST(AssemblerTest, RejectsBadRegister)
{
    EXPECT_THROW(Assembler::assemble("bad", "movi r16, 1\nhalt\n"),
                 AsmError);
    EXPECT_THROW(Assembler::assemble("bad", "movi rx, 1\nhalt\n"),
                 AsmError);
}

TEST(AssemblerTest, RejectsUndefinedLabel)
{
    EXPECT_THROW(Assembler::assemble("bad", "jmp nowhere\nhalt\n"),
                 AsmError);
}

TEST(AssemblerTest, RejectsTrailingTokens)
{
    EXPECT_THROW(Assembler::assemble("bad", "movi r1, 1 r2\nhalt\n"),
                 AsmError);
}

TEST(DisassemblerTest, RoundTripsThroughAssembler)
{
    const char* src = R"(
start:
        movi r1, 3
        movi r9, -1
loop:
        add  r2, r2, r1
        mul  r3, r2, #7
        load r4, [r2+2]
        store [r2+2], r4
        in   r5, 1
        out  0, r5
        blt  r2, r3, loop
        call start
        ret
)";
    Program p1 = Assembler::assemble("rt", src);
    std::string text = disassemble(p1);
    Program p2 = Assembler::assemble("rt2", text);
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
        EXPECT_EQ(p1.at(i).op, p2.at(i).op) << "instr " << i;
        EXPECT_EQ(p1.at(i).rd, p2.at(i).rd) << "instr " << i;
        EXPECT_EQ(p1.at(i).rs1, p2.at(i).rs1) << "instr " << i;
        EXPECT_EQ(p1.at(i).rs2, p2.at(i).rs2) << "instr " << i;
        EXPECT_EQ(p1.at(i).imm, p2.at(i).imm) << "instr " << i;
        EXPECT_EQ(p1.at(i).useImm, p2.at(i).useImm) << "instr " << i;
    }
}

}  // namespace
}  // namespace gecko::ir
