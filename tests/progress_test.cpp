#include <gtest/gtest.h>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "defense/controller.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Forward-progress guarantees under unbounded power failures.
 *
 * GECKO sizes every region to fit one worst-case power-on period
 * (§VI-B), so with any on-period longer than maxRegionCycles it always
 * completes.  Ratchet regions can enclose whole loops; with on-periods
 * shorter than such a region it livelocks — the DoS the paper measures
 * in §VII-B3.
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using runtime::GeckoRuntime;
using sim::IoHub;
using sim::Machine;
using sim::Nvm;
using sim::RunExit;

/**
 * Run with a hard power failure every `interval` cycles, forever.
 * @return true if the program completed within `max_cycles` total.
 */
bool
completesUnderFailureStorm(const CompiledProgram& compiled,
                           const std::string& name, std::uint64_t interval,
                           std::uint64_t max_cycles)
{
    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo(name, io);
    Machine machine(compiled, nvm, io);
    machine.setStagedIo(compiled.scheme != Scheme::kNvp);
    GeckoRuntime runtime(compiled, machine, nvm);
    runtime.onBoot();

    std::uint64_t total = 0;
    while (total < max_cycles) {
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(interval, &consumed);
        total += consumed;
        runtime.onProgress();
        if (exit == RunExit::kHalted || machine.halted())
            return true;
        machine.powerCycle();
        runtime.onBoot();
    }
    return false;
}

TEST(ForwardProgressTest, GeckoCompletesWhenRegionsFitThePowerPeriod)
{
    compiler::PipelineConfig config;
    config.maxRegionCycles = 2000;
    for (const std::string& name : workloads::benchmarkNames()) {
        CompiledProgram compiled =
            compiler::compile(workloads::build(name), Scheme::kGecko,
                              config);
        // On-period 4000 cycles > region bound 2000: must terminate.
        EXPECT_TRUE(completesUnderFailureStorm(compiled, name, 4000,
                                               1ull << 30))
            << name;
    }
}

TEST(ForwardProgressTest, RatchetLivelocksOnLoopSizedRegions)
{
    // bitcnt has no memory anti-dependences, so Ratchet keeps the whole
    // nested loop in one region; a 4000-cycle on-period can never finish
    // it (the paper's Ratchet DoS).
    CompiledProgram compiled =
        compiler::compile(workloads::build("bitcnt"), Scheme::kRatchet);
    EXPECT_FALSE(completesUnderFailureStorm(compiled, "bitcnt", 4000,
                                            1ull << 24));
}

TEST(ForwardProgressTest, RatchetCompletesWithLongPowerPeriods)
{
    CompiledProgram compiled =
        compiler::compile(workloads::build("bitcnt"), Scheme::kRatchet);
    EXPECT_TRUE(completesUnderFailureStorm(compiled, "bitcnt", 1ull << 26,
                                           1ull << 30));
}

/**
 * One full-system run of the sustained-EMI scenario (DESIGN.md §11):
 * weak harvester, regions sized near the forged-wake power period, a
 * 5 s resonant tone.  Returns the completion counts before / during /
 * after the tone plus the simulation for further inspection.
 */
struct SustainedEmiRun {
    std::uint64_t before = 0;
    std::uint64_t during = 0;
    std::uint64_t after = 0;
    defense::DefenseStats defense;
    defense::Mode finalMode = defense::Mode::kNominal;
};

SustainedEmiRun
runSustainedEmi(bool adaptive)
{
    const auto& dev = device::DeviceDb::msp430fr5994();
    compiler::PipelineConfig pconfig;
    pconfig.maxRegionCycles = 60000;
    CompiledProgram compiled = compiler::compile(
        workloads::build("sensor_app"), Scheme::kGecko, pconfig);
    IoHub io;
    workloads::setupIo("sensor_app", io);
    energy::ConstantHarvester wave(3.3, 600.0);
    sim::SimConfig config;
    config.cap.capacitanceF = 1e-3;
    config.defense.enabled = adaptive;
    config.defense.energyDebtBudgetJ = 2.5e-3;

    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
    attack::EmiSource source(rig, 27e6, 38.0);
    attack::AttackSchedule schedule({{1.0, 6.0, 27e6, 38.0}});

    sim::IntermittentSim simulation(compiled, dev, config, wave, io);
    simulation.setEmiSource(&source);
    simulation.setAttackSchedule(&schedule);

    SustainedEmiRun r;
    simulation.run(1.0);
    r.before = simulation.machine().stats.completions;
    simulation.run(5.0);
    r.during = simulation.machine().stats.completions - r.before;
    simulation.run(2.0);
    r.after = simulation.machine().stats.completions - r.before - r.during;
    if (const defense::DefenseController* dc =
            simulation.defenseController()) {
        r.defense = dc->stats();
        r.finalMode = dc->mode();
    }
    return r;
}

TEST(ForwardProgressTest, SustainedEmiLivelocksStaticJit)
{
    // The paper's static response (detect at boot, rollback, probe,
    // re-enable) assumes the tone ends.  Sustained forged wakes boot
    // the node at barely-above-lockout voltage: every power cycle pays
    // the cold-boot overhead and dies re-executing the same region —
    // zero completions for the whole 5 s tone.
    SustainedEmiRun st = runSustainedEmi(false);
    EXPECT_GT(st.before, 0u);
    EXPECT_LE(st.during, 1u) << "static JIT should livelock under the tone";
    EXPECT_GT(st.after, 0u) << "static must recover once the tone ends";
}

TEST(ForwardProgressTest, AdaptiveRatchetRestoresProgressUnderSustainedEmi)
{
    SustainedEmiRun ad = runSustainedEmi(true);
    // Detection and escalation happen inside the tone...
    EXPECT_GE(ad.defense.escalations, 2u);
    EXPECT_GE(ad.defense.firstEscalationT, 1.0);
    EXPECT_LT(ad.defense.firstEscalationT, 1.1);
    // ...the forward-progress ratchet trips out of the boot-churn
    // livelock into the recharge-dwell mode...
    EXPECT_GE(ad.defense.ratchetTrips, 1u);
    EXPECT_GT(ad.defense.wakesDeferred, 0u);
    // ...which completes real work while the tone is still on...
    EXPECT_GE(ad.during, 10u)
        << "adaptive controller must make progress under the tone";
    // ...and the hysteresis ladder returns to nominal afterwards.
    EXPECT_EQ(ad.finalMode, defense::Mode::kNominal);
    EXPECT_GT(ad.after, 0u);
}

TEST(ForwardProgressTest, RetryExhaustionDegradesThenRecovers)
{
    // Machine-level round trip: exhausted checkpoint-save retries must
    // (a) latch the runtime's persistent rollback-only flag, (b) drive
    // the controller to kDegraded, and (c) recover fully — controller
    // back to kNominal via proven progress plus calm, runtime JIT
    // re-armed by the §VI-F probe.
    CompiledProgram compiled =
        compiler::compile(workloads::build("sensor_loop"), Scheme::kGecko);
    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo("sensor_loop", io);
    Machine machine(compiled, nvm, io);
    GeckoRuntime runtime(compiled, machine, nvm);

    defense::DefenseConfig dconfig;
    dconfig.enabled = true;
    dconfig.calmSamples = 4;
    dconfig.decayPerSample = 0.2;
    defense::DefenseController dc(dconfig, defense::PlantModel{});
    runtime.setDefense(&dc);

    runtime.onBoot();
    ASSERT_TRUE(runtime.jitActive());

    runtime.setNow(1.0);
    runtime.noteCkptRetriesExhausted();
    EXPECT_EQ(nvm.jitDisabledFlag, 1u);
    EXPECT_EQ(runtime.stats.retriesExhausted, 1u);
    EXPECT_EQ(runtime.stats.integrityDegradations, 1u);
    EXPECT_EQ(dc.mode(), defense::Mode::kDegraded);
    EXPECT_FALSE(runtime.jitActive());

    // Controller recovery: one committed region proves progress, then
    // a calm dwell per level steps the ladder back down.
    dc.noteCommit(nvm.commitCount + 1);
    analog::MonitorEvent ev;
    double t = 2.0;
    while (dc.mode() != defense::Mode::kNominal) {
        dc.observeSample(t, 3.0, 3.0, ev, ev);
        t += 1e-5;
    }
    EXPECT_TRUE(dc.jitAllowed());
    EXPECT_FALSE(runtime.jitActive()) << "NVM flag still pins JIT off";

    // Runtime recovery: the next boot arms the probe; two commits with
    // a silent monitor re-enable the JIT protocol.
    machine.powerCycle();
    runtime.onBoot();
    nvm.commitCount += 1;
    runtime.onProgress();
    EXPECT_EQ(nvm.jitDisabledFlag, 1u) << "first commit is just the redo";
    nvm.commitCount += 1;
    runtime.onProgress();
    EXPECT_EQ(nvm.jitDisabledFlag, 0u);
    EXPECT_EQ(runtime.stats.jitReenables, 1u);
    EXPECT_TRUE(runtime.jitActive());
}

TEST(ForwardProgressTest, GeckoWcetBoundIsRespectedByAllRegions)
{
    compiler::PipelineConfig config;
    config.maxRegionCycles = 2000;
    for (const std::string& name : workloads::benchmarkNames()) {
        CompiledProgram compiled =
            compiler::compile(workloads::build(name), Scheme::kGecko,
                              config);
        for (const auto& region : compiled.regions)
            EXPECT_LE(region.wcetCycles, 2000) << name;
    }
}

}  // namespace
}  // namespace gecko
