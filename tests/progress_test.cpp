#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Forward-progress guarantees under unbounded power failures.
 *
 * GECKO sizes every region to fit one worst-case power-on period
 * (§VI-B), so with any on-period longer than maxRegionCycles it always
 * completes.  Ratchet regions can enclose whole loops; with on-periods
 * shorter than such a region it livelocks — the DoS the paper measures
 * in §VII-B3.
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using runtime::GeckoRuntime;
using sim::IoHub;
using sim::Machine;
using sim::Nvm;
using sim::RunExit;

/**
 * Run with a hard power failure every `interval` cycles, forever.
 * @return true if the program completed within `max_cycles` total.
 */
bool
completesUnderFailureStorm(const CompiledProgram& compiled,
                           const std::string& name, std::uint64_t interval,
                           std::uint64_t max_cycles)
{
    Nvm nvm(16384);
    IoHub io;
    workloads::setupIo(name, io);
    Machine machine(compiled, nvm, io);
    machine.setStagedIo(compiled.scheme != Scheme::kNvp);
    GeckoRuntime runtime(compiled, machine, nvm);
    runtime.onBoot();

    std::uint64_t total = 0;
    while (total < max_cycles) {
        std::uint64_t consumed = 0;
        RunExit exit = machine.run(interval, &consumed);
        total += consumed;
        runtime.onProgress();
        if (exit == RunExit::kHalted || machine.halted())
            return true;
        machine.powerCycle();
        runtime.onBoot();
    }
    return false;
}

TEST(ForwardProgressTest, GeckoCompletesWhenRegionsFitThePowerPeriod)
{
    compiler::PipelineConfig config;
    config.maxRegionCycles = 2000;
    for (const std::string& name : workloads::benchmarkNames()) {
        CompiledProgram compiled =
            compiler::compile(workloads::build(name), Scheme::kGecko,
                              config);
        // On-period 4000 cycles > region bound 2000: must terminate.
        EXPECT_TRUE(completesUnderFailureStorm(compiled, name, 4000,
                                               1ull << 30))
            << name;
    }
}

TEST(ForwardProgressTest, RatchetLivelocksOnLoopSizedRegions)
{
    // bitcnt has no memory anti-dependences, so Ratchet keeps the whole
    // nested loop in one region; a 4000-cycle on-period can never finish
    // it (the paper's Ratchet DoS).
    CompiledProgram compiled =
        compiler::compile(workloads::build("bitcnt"), Scheme::kRatchet);
    EXPECT_FALSE(completesUnderFailureStorm(compiled, "bitcnt", 4000,
                                            1ull << 24));
}

TEST(ForwardProgressTest, RatchetCompletesWithLongPowerPeriods)
{
    CompiledProgram compiled =
        compiler::compile(workloads::build("bitcnt"), Scheme::kRatchet);
    EXPECT_TRUE(completesUnderFailureStorm(compiled, "bitcnt", 1ull << 26,
                                           1ull << 30));
}

TEST(ForwardProgressTest, GeckoWcetBoundIsRespectedByAllRegions)
{
    compiler::PipelineConfig config;
    config.maxRegionCycles = 2000;
    for (const std::string& name : workloads::benchmarkNames()) {
        CompiledProgram compiled =
            compiler::compile(workloads::build(name), Scheme::kGecko,
                              config);
        for (const auto& region : compiled.regions)
            EXPECT_LE(region.wcetCycles, 2000) << name;
    }
}

}  // namespace
}  // namespace gecko
