#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <tuple>
#include <vector>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "campaign/snapshot.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "exp/rng.hpp"
#include "fault/campaign.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Differential suite for the quantum-coalescing fast path (DESIGN.md
 * §14).  Coalescing is a pure speed optimization: every test here runs
 * the same scenario with the fast path enabled and disabled and demands
 * bit-identical observables — machine ExecStats, registers, NVM image,
 * I/O, simulated time, and every simulation counter except the
 * coalescing telemetry itself.
 *
 * Unlike the trace-carrying differentials in fuzz_test (an installed
 * trace buffer is one of the guards that *disables* coalescing), these
 * scenarios run without a buffer so the fast path actually engages —
 * each scenario asserts `coalescedQuanta > 0` on the enabled arm where
 * the physics permit it.
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;

/** xorshift PRNG — deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }

    std::uint32_t pick(std::uint32_t n) { return next() % n; }

  private:
    std::uint32_t state_;
};

/** Everything observable about a finished run. */
struct Obs {
    sim::ExecStats stats;
    std::array<std::uint32_t, 16> regs{};
    std::vector<std::uint32_t> out;
    std::vector<std::uint32_t> memory;
    double simTimeS = 0.0;
    double now = 0.0;
    std::uint64_t quanta = 0;
    std::uint64_t coalescedQuanta = 0;
    /// All SimStats counters that must not depend on coalescing.
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t, std::uint64_t, std::uint64_t>
        counters;
};

Obs
capture(sim::IntermittentSim& simulation, sim::IoHub& io)
{
    Obs o;
    o.stats = simulation.machine().stats;
    o.regs = simulation.machine().regs();
    o.out = io.output(0).values();
    o.memory = simulation.nvm().data();
    o.simTimeS = simulation.stats.simTimeS;
    o.now = simulation.now();
    o.quanta = simulation.stats.quanta;
    o.coalescedQuanta = simulation.stats.coalescedQuanta;
    const sim::SimStats& s = simulation.stats;
    o.counters = {s.reboots,
                  s.hardDeaths,
                  s.backupSignals,
                  s.wakeSignals,
                  s.ignoredBackups,
                  s.jitCheckpointAttempts,
                  s.jitCheckpointsComplete,
                  s.jitCheckpointsTorn,
                  s.jitCheckpointsAborted,
                  s.missedCheckpoints,
                  s.bootCycles};
    return o;
}

void
expectSame(const Obs& on, const Obs& off, const std::string& label)
{
    EXPECT_TRUE(on.stats == off.stats) << label << ": ExecStats diverged";
    EXPECT_EQ(on.regs, off.regs) << label;
    EXPECT_EQ(on.out, off.out) << label;
    EXPECT_EQ(on.memory, off.memory) << label;
    EXPECT_EQ(on.simTimeS, off.simTimeS) << label;
    EXPECT_EQ(on.now, off.now) << label;
    EXPECT_EQ(on.quanta, off.quanta) << label << ": quantum count";
    EXPECT_EQ(on.counters, off.counters) << label << ": SimStats counters";
}

// ---------------------------------------------------------------------
// Quiet-run engagement: a steady source with no attacker is the
// coalescing fast path's home turf.  The enabled arm must absorb most
// quanta into bursts and still match the disabled arm bit-for-bit.
// ---------------------------------------------------------------------

Obs
runQuiet(int coalesceQuanta, sim::ExecBackend backend)
{
    static const CompiledProgram compiled = compiler::compile(
        workloads::build("sensor_loop"), Scheme::kGecko);
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 4096;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    cfg.coalesceQuanta = coalesceQuanta;

    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    sim::IntermittentSim simulation(compiled,
                                    device::DeviceDb::msp430fr5994(), cfg,
                                    supply, io);
    simulation.machine().setExecBackend(backend);
    simulation.run(0.05);
    return capture(simulation, io);
}

TEST(CoalesceQuietTest, QuietRunEngagesAndMatchesSlowPath)
{
    for (sim::ExecBackend backend :
         {sim::ExecBackend::kStep, sim::ExecBackend::kFast,
          sim::ExecBackend::kBlock}) {
        const char* name = sim::execBackendName(backend);
        Obs on = runQuiet(64, backend);
        Obs off = runQuiet(0, backend);
        ASSERT_GT(on.stats.cycles, 0u) << name;
        EXPECT_GT(on.coalescedQuanta, 0u)
            << name << ": fast path never engaged on a quiet run";
        EXPECT_EQ(off.coalescedQuanta, 0u) << name;
        expectSame(on, off, name);
    }
}

// ---------------------------------------------------------------------
// Fuzzed EMI schedules: random tone windows switch the attack on and
// off mid-run.  Coalescing must engage only between windows (the sorted
// window query proves the horizon clean) and never change a single
// observable, under every execution backend.
// ---------------------------------------------------------------------

struct EmiEnv {
    sim::IoHub io;
    std::unique_ptr<energy::ConstantHarvester> supply;
    std::unique_ptr<sim::IntermittentSim> simulation;
    std::unique_ptr<attack::RemoteRig> rig;
    std::unique_ptr<attack::EmiSource> source;
    std::unique_ptr<attack::AttackSchedule> schedule;
};

/** Deterministic (seed-derived) build; identical every call. */
void
buildEmiEnv(EmiEnv& env, std::uint32_t seed, sim::ExecBackend backend,
            int coalesceQuanta)
{
    Rng rng(seed);
    double freqHz = 1e6 * (1 + rng.pick(300));
    double powerDbm = 25.0 + rng.pick(16);
    std::vector<attack::AttackWindow> windows;
    double t = 0.001 * (1 + rng.pick(4));
    int nWindows = 2 + static_cast<int>(rng.pick(3));
    for (int i = 0; i < nWindows; ++i) {
        double on = 0.001 * (1 + rng.pick(5));
        windows.push_back({t, t + on, freqHz, powerDbm});
        t += on + 0.001 * (1 + rng.pick(4));
    }

    static const CompiledProgram compiled = compiler::compile(
        workloads::build("sensor_loop"), Scheme::kGecko);
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 4096;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.monitorSeed = seed;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    cfg.coalesceQuanta = coalesceQuanta;

    workloads::setupIo("sensor_loop", env.io);
    env.supply = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);
    env.simulation = std::make_unique<sim::IntermittentSim>(
        compiled, dev, cfg, *env.supply, env.io);
    env.simulation->machine().setExecBackend(backend);
    env.rig = std::make_unique<attack::RemoteRig>(dev, cfg.monitorKind, 0.5);
    env.source =
        std::make_unique<attack::EmiSource>(*env.rig, freqHz, powerDbm);
    env.schedule =
        std::make_unique<attack::AttackSchedule>(std::move(windows));
    env.simulation->setEmiSource(env.source.get());
    env.simulation->setAttackSchedule(env.schedule.get());
}

Obs
runEmi(std::uint32_t seed, sim::ExecBackend backend, int coalesceQuanta)
{
    EmiEnv env;
    buildEmiEnv(env, seed, backend, coalesceQuanta);
    env.simulation->run(0.03);
    return capture(*env.simulation, env.io);
}

class CoalesceEmiFuzzTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CoalesceEmiFuzzTest, RandomEmiSchedulesUnchangedByCoalescing)
{
    auto seed =
        static_cast<std::uint32_t>(exp::applyGlobalSeed(GetParam()));
    std::uint64_t engaged = 0;
    for (sim::ExecBackend backend :
         {sim::ExecBackend::kStep, sim::ExecBackend::kFast,
          sim::ExecBackend::kBlock}) {
        const char* name = sim::execBackendName(backend);
        Obs on = runEmi(seed, backend, 64);
        Obs off = runEmi(seed, backend, 0);
        ASSERT_GT(on.stats.cycles, 0u) << name << " seed " << seed;
        EXPECT_EQ(off.coalescedQuanta, 0u) << name << " seed " << seed;
        expectSame(on, off,
                   std::string(name) + " seed " + std::to_string(seed));
        engaged += on.coalescedQuanta;
    }
    // The schedules leave quiet gaps between windows; at least some of
    // them must have been absorbed by the fast path.
    EXPECT_GT(engaged, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceEmiFuzzTest,
                         ::testing::Range(1u, 9u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Fault-injection differential: every injector class, replayed with
// coalescing on and off, must produce the identical CaseResult — the
// fast path may never move an injection point, change an outcome, or
// perturb a defence counter.  runCase resolves the coalescing limit
// from GECKO_COALESCE at simulator construction, so the arms toggle it
// through the environment.
// ---------------------------------------------------------------------

fault::CaseResult
runCaseWithCoalesce(const fault::CaseSpec& spec, const char* limit)
{
    ::setenv("GECKO_COALESCE", limit, 1);
    fault::CaseResult r =
        fault::runCase(spec, 0.5, 0, sim::ExecBackend::kBlock);
    ::unsetenv("GECKO_COALESCE");
    return r;
}

TEST(CoalesceInjectorTest, AllInjectorsUnaffectedByCoalescing)
{
    using fault::CaseResult;
    using fault::CaseSpec;
    using fault::InjectorKind;
    const InjectorKind kinds[] = {
        InjectorKind::kBitFlip,       InjectorKind::kMultiBitFlip,
        InjectorKind::kTornWrite,     InjectorKind::kAckCorrupt,
        InjectorKind::kStaleImage,    InjectorKind::kMonitorStuck,
        InjectorKind::kMonitorOffset, InjectorKind::kBrownoutBurst,
        InjectorKind::kEmiBurst,      InjectorKind::kInstrSkip,
        InjectorKind::kOpcodeCorrupt, InjectorKind::kOperandFlip,
    };
    for (InjectorKind kind : kinds) {
        for (Scheme scheme : {Scheme::kNvp, Scheme::kGecko}) {
            CaseSpec spec;
            spec.injector = kind;
            spec.scheme = scheme;
            spec.workload =
                fault::isSimLevel(kind) ? "sensor_loop" : "crc16";
            spec.seed = exp::applyGlobalSeed(
                exp::mixSeed(0xc0a1u, static_cast<std::uint64_t>(kind)));

            CaseResult on = runCaseWithCoalesce(spec, "64");
            CaseResult off = runCaseWithCoalesce(spec, "0");
            const char* inj = fault::injectorName(kind);
            EXPECT_EQ(on.outcome, off.outcome) << inj;
            EXPECT_EQ(on.detail, off.detail) << inj;
            EXPECT_EQ(on.injectAt, off.injectAt) << inj;
            EXPECT_EQ(on.word, off.word) << inj;
            EXPECT_EQ(on.corruptedRestores, off.corruptedRestores) << inj;
            EXPECT_EQ(on.crcRejects, off.crcRejects) << inj;
            EXPECT_EQ(on.slotRepairs, off.slotRepairs) << inj;
            EXPECT_EQ(on.ckptSaveRetries, off.ckptSaveRetries) << inj;
            EXPECT_EQ(on.retriesExhausted, off.retriesExhausted) << inj;
            EXPECT_EQ(on.integrityDegradations, off.integrityDegradations)
                << inj;
            EXPECT_EQ(on.defenseEscalations, off.defenseEscalations)
                << inj;
            EXPECT_EQ(on.defenseRatchetTrips, off.defenseRatchetTrips)
                << inj;
            EXPECT_EQ(on.defended, off.defended) << inj;
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot/resume differential: serializing the simulation between
// run() slices — burst state never spans a slice; a coalesced burst is
// committed before stepRunning returns — tearing the world down, and
// restoring into a fresh build must be invisible with the fast path
// enabled.  The restored run re-proves its bursts from scratch (the
// coalescing telemetry is deliberately not archived), so this also
// pins down that a cold burst proof reaches the same trajectory.
// ---------------------------------------------------------------------

Obs
runEmiSliced(std::uint32_t seed, int snapshotAt)
{
    auto env = std::make_unique<EmiEnv>();
    buildEmiEnv(*env, seed, sim::ExecBackend::kBlock, 64);
    for (int k = 0; k < 4; ++k) {
        env->simulation->run(0.005);
        if (k + 1 == snapshotAt) {
            std::vector<std::uint8_t> blob =
                campaign::saveSimSnapshot(*env->simulation, env->io);
            env = std::make_unique<EmiEnv>();
            buildEmiEnv(*env, seed, sim::ExecBackend::kBlock, 64);
            campaign::restoreSimSnapshot(*env->simulation, env->io, blob);
        }
    }
    return capture(*env->simulation, env->io);
}

class CoalesceSnapshotTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CoalesceSnapshotTest, SnapshotRestoreInvisibleWithCoalescing)
{
    auto seed =
        static_cast<std::uint32_t>(exp::applyGlobalSeed(GetParam()));
    Obs ref = runEmiSliced(seed, -1);
    ASSERT_GT(ref.stats.cycles, 0u) << "seed " << seed;
    for (int at : {1, 2, 3}) {
        Obs obs = runEmiSliced(seed, at);
        // The telemetry counters restart at zero on restore, so only
        // the architectural observables are compared — via expectSame
        // minus the quantum counters.
        EXPECT_TRUE(obs.stats == ref.stats)
            << "snapshot@" << at << " seed " << seed;
        EXPECT_EQ(obs.regs, ref.regs) << "@" << at << " seed " << seed;
        EXPECT_EQ(obs.out, ref.out) << "@" << at << " seed " << seed;
        EXPECT_EQ(obs.memory, ref.memory)
            << "@" << at << " seed " << seed;
        EXPECT_EQ(obs.simTimeS, ref.simTimeS)
            << "@" << at << " seed " << seed;
        EXPECT_EQ(obs.now, ref.now) << "@" << at << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalesceSnapshotTest,
                         ::testing::Range(1u, 5u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gecko
