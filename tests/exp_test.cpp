#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "compiler/compile_cache.hpp"
#include "exp/parallel.hpp"
#include "exp/thread_pool.hpp"

/**
 * @file
 * Tests for the parallel sweep-execution engine: thread-pool ordering
 * and determinism, exception propagation, and the shared compile
 * cache.  exp_test is the suite the TSan build gate runs
 * (`-DGECKO_SANITIZE=thread`).
 */

namespace gecko {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks)
{
    exp::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    while (counter.load() < 100)
        std::this_thread::yield();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, CallerCanStealWork)
{
    exp::ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    // The submitting thread may drain tasks too; either way all run.
    while (counter.load() < 50)
        if (!pool.tryRunOne())
            std::this_thread::yield();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelMapTest, PreservesInputOrdering)
{
    exp::ThreadPool pool(8);
    std::vector<int> items(200);
    for (int i = 0; i < 200; ++i)
        items[i] = i;
    // Early items sleep longest so completion order inverts submission
    // order — results must still land at their input index.
    auto squares = exp::parallelMap(pool, items, [](const int& v) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((200 - v) * 5));
        return v * v;
    });
    ASSERT_EQ(squares.size(), items.size());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ParallelMapTest, SerialAndParallelResultsIdentical)
{
    // A fig04-style mini-sweep: attack a board over a small frequency
    // grid with 1 worker and with 8, and require identical outcomes —
    // the determinism contract behind `GECKO_THREADS=N` byte-identical
    // stdout.
    auto sweep = [](exp::ThreadPool& pool) {
        auto freqs = bench::attackFrequencyGrid(20e6, 40e6);
        return exp::parallelMap(pool, freqs, [](const double& f) {
            const auto& dev = device::DeviceDb::msp430fr5994();
            bench::VictimConfig vc;
            vc.device = &dev;
            vc.workload = "sensor_loop";
            vc.simSeconds = 0.005;
            attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.5);
            bench::AttackOutcome out = bench::runVictim(vc, &rig, f, 35.0);
            return std::make_pair(out.cycles, out.completions);
        });
    };
    exp::ThreadPool serial(1);
    exp::ThreadPool wide(8);
    auto a = sweep(serial);
    auto b = sweep(wide);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first) << "freq index " << i;
        EXPECT_EQ(a[i].second, b[i].second) << "freq index " << i;
    }
}

TEST(ParallelMapTest, PropagatesExceptions)
{
    exp::ThreadPool pool(4);
    std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_THROW(
        exp::parallelMap(pool, items,
                         [](const int& v) {
                             if (v == 5)
                                 throw std::runtime_error("task 5 failed");
                             return v;
                         }),
        std::runtime_error);
    // The pool survives a throwing sweep and stays usable.
    auto ok = exp::parallelMap(pool, items,
                               [](const int& v) { return v + 1; });
    EXPECT_EQ(ok[7], 8);
}

TEST(ParallelMapTest, RecordsPerTaskSeconds)
{
    exp::ThreadPool pool(2);
    std::vector<int> items = {1, 2, 3};
    std::vector<double> seconds;
    exp::parallelMap(
        pool, items,
        [](const int& v) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return v;
        },
        &seconds);
    ASSERT_EQ(seconds.size(), items.size());
    for (double s : seconds)
        EXPECT_GT(s, 0.0);
}

TEST(CompileCacheTest, CompilesEachKeyOnceUnderContention)
{
    compiler::CompileCache cache;
    std::atomic<int> builds{0};
    exp::ThreadPool pool(8);
    std::vector<int> items(64);
    auto results = exp::parallelMap(pool, items, [&](const int&) {
        return cache.getOrCompile("k", [&] {
            builds.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            return compiler::compile(workloads::build("blink"),
                                     compiler::Scheme::kNvp);
        });
    });
    EXPECT_EQ(builds.load(), 1);
    for (const auto& r : results)
        EXPECT_EQ(r.get(), results[0].get());  // one shared instance
    EXPECT_EQ(cache.size(), 1u);
}

TEST(CompileCacheTest, DistinctKeysGetDistinctPrograms)
{
    compiler::CompileCache cache;
    auto a = cache.getOrCompile(
        compiler::CompileCache::makeKey("blink", compiler::Scheme::kNvp,
                                        "devA"),
        [] {
            return compiler::compile(workloads::build("blink"),
                                     compiler::Scheme::kNvp);
        });
    auto b = cache.getOrCompile(
        compiler::CompileCache::makeKey("blink", compiler::Scheme::kGecko,
                                        "devA"),
        [] {
            return compiler::compile(workloads::build("blink"),
                                     compiler::Scheme::kGecko);
        });
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(CompileCacheTest, FailedBuildIsRetriable)
{
    compiler::CompileCache cache;
    int attempts = 0;
    auto build = [&]() -> compiler::CompiledProgram {
        if (++attempts == 1)
            throw std::runtime_error("transient");
        return compiler::compile(workloads::build("blink"),
                                 compiler::Scheme::kNvp);
    };
    EXPECT_THROW(cache.getOrCompile("k", build), std::runtime_error);
    EXPECT_NO_THROW(cache.getOrCompile("k", build));
    EXPECT_EQ(attempts, 2);
}

TEST(ThreadPoolTest, EnvDefaultRespectsOverride)
{
    exp::ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(exp::ThreadPool::global().threadCount(), 3);
}

}  // namespace
}  // namespace gecko
