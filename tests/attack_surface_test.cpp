#include <gtest/gtest.h>

#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "device/device_db.hpp"
#include "metrics/stats.hpp"
#include "sim/intermittent_sim.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Per-device attack-surface properties (the Table I inventory as
 * parameterized tests): every board must be disruptable at its
 * resonance, none above the front-end's low-pass corner, and the
 * monitor-path differences must order as measured in the paper.
 */

namespace gecko {
namespace {

using attack::EmiSource;
using attack::RemoteRig;
using compiler::Scheme;
using device::DeviceDb;
using device::DeviceProfile;

/** Executed cycles in 40 ms with an optional tone. */
std::uint64_t
runCycles(const DeviceProfile& dev, analog::MonitorKind kind,
          const RemoteRig* rig, double freqHz)
{
    static std::map<int, compiler::CompiledProgram> cache;
    auto it = cache.find(0);
    if (it == cache.end())
        it = cache
                 .emplace(0, compiler::compile(
                                 workloads::build("sensor_loop"),
                                 Scheme::kNvp))
                 .first;
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    sim::SimConfig config;
    config.monitorKind = kind;
    sim::IntermittentSim simulation(it->second, dev, config, supply, io);
    std::unique_ptr<EmiSource> source;
    if (rig) {
        source = std::make_unique<EmiSource>(*rig, freqHz, 35.0);
        simulation.setEmiSource(source.get());
    }
    simulation.run(0.04);
    return simulation.machine().stats.cycles;
}

/** Peak frequency of the device's ADC coupling path. */
double
resonantFreq(const DeviceProfile& dev)
{
    double best_f = 1e6, best_g = 0;
    for (double f = 1e6; f < 60e6; f += 0.5e6) {
        double g = dev.adcRemote.gainAt(f);
        if (g > best_g) {
            best_g = g;
            best_f = f;
        }
    }
    return best_f;
}

class DeviceAttackTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const DeviceProfile& dev() const
    {
        return DeviceDb::byName(GetParam());
    }
};

TEST_P(DeviceAttackTest, ResonantToneCausesSevereDisruption)
{
    RemoteRig rig(dev(), analog::MonitorKind::kAdc, 0.1);
    std::uint64_t clean =
        runCycles(dev(), analog::MonitorKind::kAdc, nullptr, 0);
    std::uint64_t attacked = runCycles(dev(), analog::MonitorKind::kAdc,
                                       &rig, resonantFreq(dev()));
    EXPECT_LT(attacked, clean / 5)
        << dev().name << " should lose >80% forward progress at "
        << resonantFreq(dev()) / 1e6 << " MHz";
}

TEST_P(DeviceAttackTest, HighFrequenciesAreHarmless)
{
    RemoteRig rig(dev(), analog::MonitorKind::kAdc, 0.1);
    std::uint64_t clean =
        runCycles(dev(), analog::MonitorKind::kAdc, nullptr, 0);
    for (double f : {120e6, 300e6, 900e6}) {
        std::uint64_t attacked =
            runCycles(dev(), analog::MonitorKind::kAdc, &rig, f);
        EXPECT_GT(attacked, clean * 9 / 10)
            << dev().name << " must be unaffected at " << f / 1e6
            << " MHz (paper: nothing above ~50 MHz)";
    }
}

TEST_P(DeviceAttackTest, AttackWeakensWithDistance)
{
    double f = resonantFreq(dev());
    RemoteRig near(dev(), analog::MonitorKind::kAdc, 0.1);
    RemoteRig far(dev(), analog::MonitorKind::kAdc, 25.0);
    std::uint64_t clean =
        runCycles(dev(), analog::MonitorKind::kAdc, nullptr, 0);
    std::uint64_t at_near =
        runCycles(dev(), analog::MonitorKind::kAdc, &near, f);
    std::uint64_t at_far =
        runCycles(dev(), analog::MonitorKind::kAdc, &far, f);
    EXPECT_LT(at_near, clean);
    EXPECT_GT(at_far, at_near) << "25 m must be weaker than 0.1 m";
}

INSTANTIATE_TEST_SUITE_P(AllBoards, DeviceAttackTest,
                         ::testing::ValuesIn([] {
                             std::vector<std::string> names;
                             for (const auto& d : DeviceDb::all())
                                 names.push_back(d.name);
                             return names;
                         }()),
                         [](const auto& info) { return info.param; });

TEST(AttackSurfaceTest, ComparatorMonitorIsWorseThanAdc)
{
    // Table I: the FR5994's comparator path R_min is orders of
    // magnitude below its ADC path's.
    const auto& dev = DeviceDb::msp430fr5994();
    RemoteRig adc_rig(dev, analog::MonitorKind::kAdc, 0.1);
    RemoteRig comp_rig(dev, analog::MonitorKind::kComparator, 0.1);
    std::uint64_t adc =
        runCycles(dev, analog::MonitorKind::kAdc, &adc_rig, 27e6);
    std::uint64_t comp =
        runCycles(dev, analog::MonitorKind::kComparator, &comp_rig, 5e6);
    EXPECT_LT(comp, adc / 2);
}

TEST(AttackSurfaceTest, GeckoOutperformsNvpOnEveryBoardUnderAttack)
{
    // The defense generalizes beyond the FR5994 evaluation board.
    auto gecko = compiler::compile(workloads::build("sensor_loop"),
                                   Scheme::kGecko);
    auto nvp = compiler::compile(workloads::build("sensor_loop"),
                                 Scheme::kNvp);
    for (const auto& dev : DeviceDb::all()) {
        double f = resonantFreq(dev);
        std::uint64_t done[2];
        int i = 0;
        for (const auto* prog : {&nvp, &gecko}) {
            sim::IoHub io;
            workloads::setupIo("sensor_loop", io);
            energy::ConstantHarvester supply(3.3, 5.0);
            sim::SimConfig config;
            sim::IntermittentSim simulation(*prog, dev, config, supply,
                                            io);
            RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
            EmiSource source(rig, f, 35.0);
            simulation.setEmiSource(&source);
            simulation.run(0.1);
            done[i++] = simulation.machine().stats.completions;
        }
        EXPECT_GT(done[1], done[0] * 3)
            << dev.name << ": GECKO must out-serve NVP under attack";
    }
}

}  // namespace
}  // namespace gecko
