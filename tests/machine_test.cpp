#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "compiler/pipeline.hpp"
#include "ir/assembler.hpp"
#include "ir/builder.hpp"
#include "sim/intermittent_sim.hpp"
#include "sim/machine.hpp"
#include "workloads/workloads.hpp"

namespace gecko::sim {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using ir::Program;
using ir::ProgramBuilder;

CompiledProgram
wrap(Program p)
{
    return compiler::compile(p, Scheme::kNvp);
}

struct Rig {
    Nvm nvm{4096};
    IoHub io;
};

TEST(MachineTest, AluAndControlFlow)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 6
        movi r2, 7
        mul  r3, r1, r2
        sub  r3, r3, #2
        out  0, r3
        halt
)");
    CompiledProgram c = wrap(std::move(p));
    Rig rig;
    std::uint64_t cycles = runToCompletion(c, rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{40});
    EXPECT_GT(cycles, 5u);
}

TEST(MachineTest, MemoryRoundTrip)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 100
        movi r2, 12345
        store [r1+4], r2
        load  r3, [r1+4]
        out   0, r3
        halt
)");
    Rig rig;
    CompiledProgram c = wrap(std::move(p));
    runToCompletion(c, rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{12345});
    EXPECT_EQ(rig.nvm.load(104), 12345u);
}

TEST(MachineTest, CallAndReturn)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 5
        call double
        out  0, r1
        halt
double:
        add r1, r1, r1
        ret
)");
    Rig rig;
    CompiledProgram c = wrap(std::move(p));
    runToCompletion(c, rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{10});
}

TEST(MachineTest, LoopExecutesCorrectCount)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 0
        movi r2, 100
        movi r3, 0
loop:
        add  r1, r1, #3
        add  r3, r3, #1
        bne  r3, r2, loop
        out  0, r1
        halt
)");
    Rig rig;
    runToCompletion(wrap(std::move(p)), rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{300});
}

TEST(MachineTest, InputStreamsAreIndexed)
{
    Program p = ir::Assembler::assemble("t", R"(
        in r1, 1
        in r2, 1
        add r3, r1, r2
        out 0, r3
        halt
)");
    Rig rig;
    rig.io.setInput(1, std::make_shared<VectorInput>(
                           std::vector<std::uint32_t>{10, 20, 30}));
    runToCompletion(wrap(std::move(p)), rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{30});
}

TEST(MachineTest, FaultTolerantModeFlagsBadAccesses)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 100000
        load r2, [r1]
        halt
)");
    CompiledProgram c = wrap(std::move(p));
    Rig rig;
    Machine m(c, rig.nvm, rig.io);

    // Default: throws.
    std::uint64_t consumed = 0;
    EXPECT_THROW(m.run(1000, &consumed), std::runtime_error);

    Machine m2(c, rig.nvm, rig.io);
    m2.setFaultTolerant(true);
    RunExit exit = m2.run(1000, &consumed);
    EXPECT_EQ(exit, RunExit::kFaulted);
    EXPECT_TRUE(m2.faulted());
    // A faulted machine subsequently burns cycles without progress.
    std::uint64_t instrs = m2.stats.instrs;
    m2.run(100, &consumed);
    EXPECT_EQ(consumed, 100u);
    EXPECT_EQ(m2.stats.instrs, instrs);
}

TEST(MachineTest, ContinuousModeRestartsAndCounts)
{
    Program p = ir::Assembler::assemble("t", R"(
        movi r1, 2
loop:
        sub r1, r1, #1
        movi r2, 0
        bne r1, r2, loop
        halt
)");
    CompiledProgram c = wrap(std::move(p));
    Rig rig;
    Machine m(c, rig.nvm, rig.io);
    m.setContinuous(true);
    std::uint64_t consumed = 0;
    m.run(10000, &consumed);
    EXPECT_GT(m.stats.completions, 100u);
}

TEST(MachineTest, StagedIoCommitsAtBoundary)
{
    // With staging, inCount only advances at a boundary.
    ProgramBuilder b("t");
    Program raw = b.in(1, 1).out(0, 1).halt().take();
    // Compile for GECKO to get boundaries around I/O.
    CompiledProgram c = compiler::compile(raw, Scheme::kGecko);
    Rig rig;
    rig.io.setInput(1, std::make_shared<VectorInput>(
                           std::vector<std::uint32_t>{42, 43}));
    runToCompletion(c, rig.nvm, rig.io);
    EXPECT_EQ(rig.io.output(0).values(), std::vector<std::uint32_t>{42});
    EXPECT_EQ(rig.nvm.inCount[1], 1u);
    EXPECT_EQ(rig.nvm.outCount[0], 1u);
}

TEST(MachineTest, CkptAndBoundarySemantics)
{
    ProgramBuilder b("t");
    ir::Program p = b.movi(3, 77).halt().take();
    // Hand-build: ckpt r3 slot 1, then boundary id 5.
    ir::Instr ck;
    ck.op = ir::Opcode::kCkpt;
    ck.rs1 = 3;
    ck.imm = 1;
    p.insertBefore(1, ck);
    ir::Instr bd;
    bd.op = ir::Opcode::kBoundary;
    bd.imm = 5;
    p.insertBefore(2, bd);

    CompiledProgram c;
    c.prog = std::move(p);
    c.scheme = Scheme::kGecko;  // staged mode

    Rig rig;
    Machine m(c, rig.nvm, rig.io);
    m.setStagedIo(true);
    std::uint64_t consumed = 0;
    m.run(100, &consumed);
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(rig.nvm.slots[3][1], 77u);
    EXPECT_EQ(rig.nvm.committedRegion, 5u);
    EXPECT_EQ(rig.nvm.commitCount, 1u);
    EXPECT_EQ(m.stats.ckptStores, 1u);
}

class WorkloadGoldenTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadGoldenTest, ProducesDeterministicNonTrivialOutput)
{
    Program p = workloads::build(GetParam());
    ASSERT_EQ(p.validate(), "");
    CompiledProgram c = wrap(std::move(p));

    Rig r1, r2;
    workloads::setupIo(GetParam(), r1.io);
    workloads::setupIo(GetParam(), r2.io);
    std::uint64_t cyc1 = runToCompletion(c, r1.nvm, r1.io);
    std::uint64_t cyc2 = runToCompletion(c, r2.nvm, r2.io);

    EXPECT_EQ(cyc1, cyc2);
    EXPECT_FALSE(r1.io.output(0).values().empty());
    EXPECT_EQ(r1.io.output(0).values(), r2.io.output(0).values());
    EXPECT_GT(cyc1, 500u) << "workload too trivial";
}

TEST_P(WorkloadGoldenTest, InstrumentationPreservesSemantics)
{
    // The crucial compiler-correctness check: NVP (uninstrumented) and
    // GECKO (fully instrumented) runs must produce identical output.
    Program p = workloads::build(GetParam());
    CompiledProgram nvp = compiler::compile(p, Scheme::kNvp);
    CompiledProgram gecko = compiler::compile(p, Scheme::kGecko);
    CompiledProgram ratchet = compiler::compile(p, Scheme::kRatchet);

    Rig ra, rb, rc;
    workloads::setupIo(GetParam(), ra.io);
    workloads::setupIo(GetParam(), rb.io);
    workloads::setupIo(GetParam(), rc.io);
    runToCompletion(nvp, ra.nvm, ra.io);
    runToCompletion(gecko, rb.nvm, rb.io);
    runToCompletion(ratchet, rc.nvm, rc.io);

    EXPECT_EQ(ra.io.output(0).values(), rb.io.output(0).values());
    EXPECT_EQ(ra.io.output(0).values(), rc.io.output(0).values());
}

TEST_P(WorkloadGoldenTest, FastAndSlowDispatchBitIdentical)
{
    // The predecoded fast path must be architecturally indistinguishable
    // from the reference step() loop: same counters, same NVM image,
    // same outputs, same resting PC — on every workload and scheme,
    // with an odd budget slice so runs stop at varied mid-program PCs.
    Program p = workloads::build(GetParam());
    for (Scheme scheme : {Scheme::kNvp, Scheme::kRatchet, Scheme::kGecko}) {
        CompiledProgram c = compiler::compile(p, scheme);
        Rig fast_rig, slow_rig;
        workloads::setupIo(GetParam(), fast_rig.io);
        workloads::setupIo(GetParam(), slow_rig.io);
        Machine fast(c, fast_rig.nvm, fast_rig.io);
        Machine slow(c, slow_rig.nvm, slow_rig.io);
        fast.setFastDispatch(true);
        slow.setFastDispatch(false);
        fast.setStagedIo(scheme != Scheme::kNvp);
        slow.setStagedIo(scheme != Scheme::kNvp);

        while (!fast.halted() || !slow.halted()) {
            std::uint64_t fast_consumed = 0, slow_consumed = 0;
            RunExit fast_exit = fast.run(777, &fast_consumed);
            RunExit slow_exit = slow.run(777, &slow_consumed);
            ASSERT_EQ(fast_exit, slow_exit) << GetParam();
            ASSERT_EQ(fast_consumed, slow_consumed) << GetParam();
            ASSERT_EQ(fast.pc(), slow.pc()) << GetParam();
            ASSERT_TRUE(fast.stats == slow.stats) << GetParam();
            ASSERT_LT(fast.stats.cycles, 1ull << 32) << "non-terminating";
        }
        EXPECT_EQ(fast.regs(), slow.regs());
        EXPECT_EQ(fast_rig.nvm.data(), slow_rig.nvm.data());
        EXPECT_EQ(fast_rig.io.output(0).values(),
                  slow_rig.io.output(0).values());
        EXPECT_FALSE(fast_rig.io.output(0).values().empty());
    }
}

TEST_P(WorkloadGoldenTest, ThreeTierDifferentialBitIdentical)
{
    // The full tier ladder: reference step(), predecoded fast dispatch,
    // and the block-compiled superinstruction backend must be pairwise
    // indistinguishable — counters, NVM, outputs, registers, resting
    // PC — on every workload and scheme.  The odd budget slice stops
    // runs at varied mid-block PCs, exercising the block backend's
    // budget-tail deoptimization every slice.
    Program p = workloads::build(GetParam());
    for (Scheme scheme : {Scheme::kNvp, Scheme::kRatchet, Scheme::kGecko}) {
        CompiledProgram c = compiler::compile(p, scheme);
        Rig rigs[3];
        std::vector<std::unique_ptr<Machine>> tiers;
        const ExecBackend kinds[3] = {ExecBackend::kStep,
                                      ExecBackend::kFast,
                                      ExecBackend::kBlock};
        for (int i = 0; i < 3; ++i) {
            workloads::setupIo(GetParam(), rigs[i].io);
            tiers.push_back(std::make_unique<Machine>(c, rigs[i].nvm,
                                                      rigs[i].io));
            tiers[i]->setExecBackend(kinds[i]);
            tiers[i]->setStagedIo(scheme != Scheme::kNvp);
        }
        Machine& ref = *tiers[0];

        while (!ref.halted() || !tiers[1]->halted() ||
               !tiers[2]->halted()) {
            std::uint64_t refConsumed = 0;
            RunExit refExit = ref.run(777, &refConsumed);
            for (int i = 1; i < 3; ++i) {
                std::uint64_t consumed = 0;
                RunExit exit = tiers[i]->run(777, &consumed);
                ASSERT_EQ(exit, refExit)
                    << GetParam() << " tier " << execBackendName(kinds[i]);
                ASSERT_EQ(consumed, refConsumed)
                    << GetParam() << " tier " << execBackendName(kinds[i]);
                ASSERT_EQ(tiers[i]->pc(), ref.pc())
                    << GetParam() << " tier " << execBackendName(kinds[i]);
                ASSERT_TRUE(tiers[i]->stats == ref.stats)
                    << GetParam() << " tier " << execBackendName(kinds[i]);
            }
            ASSERT_LT(ref.stats.cycles, 1ull << 32) << "non-terminating";
        }
        for (int i = 1; i < 3; ++i) {
            EXPECT_EQ(tiers[i]->regs(), ref.regs());
            EXPECT_EQ(rigs[i].nvm.data(), rigs[0].nvm.data());
            EXPECT_EQ(rigs[i].io.output(0).values(),
                      rigs[0].io.output(0).values());
        }
        EXPECT_FALSE(rigs[0].io.output(0).values().empty());
    }
}

TEST(MachineTest, FastDispatchContinuousModeMatchesSlow)
{
    // Continuous sensing mode restarts the program at kHalt; both
    // dispatch paths must agree across many restarts, including the
    // pending-I/O staging counters.
    Program p = workloads::build("sensor_loop");
    CompiledProgram c = compiler::compile(p, Scheme::kGecko);
    Rig fast_rig, slow_rig;
    workloads::setupIo("sensor_loop", fast_rig.io);
    workloads::setupIo("sensor_loop", slow_rig.io);
    Rig block_rig;
    workloads::setupIo("sensor_loop", block_rig.io);
    Machine fast(c, fast_rig.nvm, fast_rig.io);
    Machine slow(c, slow_rig.nvm, slow_rig.io);
    Machine block(c, block_rig.nvm, block_rig.io);
    fast.setExecBackend(ExecBackend::kFast);
    slow.setExecBackend(ExecBackend::kStep);
    block.setExecBackend(ExecBackend::kBlock);
    for (Machine* m : {&fast, &slow, &block}) {
        m->setStagedIo(true);
        m->setContinuous(true);
    }

    for (int slice = 0; slice < 64; ++slice) {
        std::uint64_t fast_consumed = 0, slow_consumed = 0,
                      block_consumed = 0;
        RunExit fast_exit = fast.run(1231, &fast_consumed);
        RunExit slow_exit = slow.run(1231, &slow_consumed);
        RunExit block_exit = block.run(1231, &block_consumed);
        ASSERT_EQ(fast_exit, slow_exit);
        ASSERT_EQ(block_exit, slow_exit);
        ASSERT_EQ(fast_consumed, slow_consumed);
        ASSERT_EQ(block_consumed, slow_consumed);
        ASSERT_EQ(fast.pc(), slow.pc());
        ASSERT_EQ(block.pc(), slow.pc());
        ASSERT_TRUE(fast.stats == slow.stats);
        ASSERT_TRUE(block.stats == slow.stats);
    }
    EXPECT_GT(fast.stats.completions, 0u);
    EXPECT_EQ(fast.pendingIn(), slow.pendingIn());
    EXPECT_EQ(fast.pendingOut(), slow.pendingOut());
    EXPECT_EQ(block.pendingIn(), slow.pendingIn());
    EXPECT_EQ(block.pendingOut(), slow.pendingOut());
    EXPECT_EQ(fast_rig.nvm.data(), slow_rig.nvm.data());
    EXPECT_EQ(block_rig.nvm.data(), slow_rig.nvm.data());
    EXPECT_EQ(fast_rig.io.output(0).values(),
              slow_rig.io.output(0).values());
    EXPECT_EQ(block_rig.io.output(0).values(),
              slow_rig.io.output(0).values());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadGoldenTest,
                         ::testing::ValuesIn([] {
                             auto v = workloads::benchmarkNames();
                             v.push_back("sensor_loop");
                             v.push_back("sensor_app");
                             v.push_back("xtea");
                             return v;
                         }()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace gecko::sim
