#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/instr.hpp"
#include "ir/program.hpp"

namespace gecko::ir {
namespace {

TEST(InstrTest, OpcodePredicates)
{
    EXPECT_TRUE(isCondBranch(Opcode::kBeq));
    EXPECT_TRUE(isCondBranch(Opcode::kBgeu));
    EXPECT_FALSE(isCondBranch(Opcode::kJmp));
    EXPECT_TRUE(isUncondTransfer(Opcode::kJmp));
    EXPECT_TRUE(isUncondTransfer(Opcode::kHalt));
    EXPECT_FALSE(isUncondTransfer(Opcode::kAdd));
    EXPECT_TRUE(isTerminator(Opcode::kRet));
    EXPECT_TRUE(isBinaryAlu(Opcode::kXor));
    EXPECT_FALSE(isBinaryAlu(Opcode::kNot));
    EXPECT_TRUE(isUnaryAlu(Opcode::kNeg));
}

TEST(InstrTest, RegsReadAndWritten)
{
    Instr add;
    add.op = Opcode::kAdd;
    add.rd = 1;
    add.rs1 = 2;
    add.rs2 = 3;
    EXPECT_TRUE(writesReg(add));
    EXPECT_EQ(regsRead(add), (std::vector<Reg>{2, 3}));

    add.useImm = true;
    EXPECT_EQ(regsRead(add), (std::vector<Reg>{2}));

    Instr store;
    store.op = Opcode::kStore;
    store.rs1 = 4;
    store.rs2 = 5;
    EXPECT_FALSE(writesReg(store));
    EXPECT_EQ(regsRead(store), (std::vector<Reg>{4, 5}));

    Instr call;
    call.op = Opcode::kCall;
    EXPECT_TRUE(writesReg(call));

    Instr ret;
    ret.op = Opcode::kRet;
    EXPECT_EQ(regsRead(ret), (std::vector<Reg>{kLinkReg}));

    Instr ckpt;
    ckpt.op = Opcode::kCkpt;
    ckpt.rs1 = 7;
    EXPECT_EQ(regsRead(ckpt), (std::vector<Reg>{7}));
    EXPECT_FALSE(writesReg(ckpt));
}

TEST(InstrTest, EvalBinarySemantics)
{
    EXPECT_EQ(evalBinary(Opcode::kAdd, 0xffffffffu, 1u), 0u);  // wraps
    EXPECT_EQ(evalBinary(Opcode::kSub, 0u, 1u), 0xffffffffu);
    EXPECT_EQ(evalBinary(Opcode::kMul, 3u, 5u), 15u);
    EXPECT_EQ(evalBinary(Opcode::kDivu, 7u, 2u), 3u);
    EXPECT_EQ(evalBinary(Opcode::kDivu, 7u, 0u), 0xffffffffu);
    EXPECT_EQ(evalBinary(Opcode::kRemu, 7u, 0u), 7u);
    EXPECT_EQ(evalBinary(Opcode::kShl, 1u, 33u), 2u);  // amount masked
    EXPECT_EQ(evalBinary(Opcode::kShr, 0x80000000u, 31u), 1u);
}

TEST(InstrTest, EvalBranchSemantics)
{
    EXPECT_TRUE(evalBranch(Opcode::kBeq, 5, 5));
    EXPECT_TRUE(evalBranch(Opcode::kBne, 5, 6));
    // Signed comparison: 0xffffffff is -1.
    EXPECT_TRUE(evalBranch(Opcode::kBlt, 0xffffffffu, 0u));
    EXPECT_FALSE(evalBranch(Opcode::kBltu, 0xffffffffu, 0u));
    EXPECT_TRUE(evalBranch(Opcode::kBgeu, 0xffffffffu, 0u));
    EXPECT_TRUE(evalBranch(Opcode::kBge, 0u, 0xffffffffu));
}

TEST(InstrTest, CycleCostsDistinguishMemoryFromAlu)
{
    Instr alu;
    alu.op = Opcode::kAdd;
    Instr load;
    load.op = Opcode::kLoad;
    Instr store;
    store.op = Opcode::kStore;
    EXPECT_LT(cycleCost(alu), cycleCost(load));
    EXPECT_LE(cycleCost(load), cycleCost(store));
    Instr div;
    div.op = Opcode::kDivu;
    EXPECT_GT(cycleCost(div), cycleCost(store));
}

TEST(ProgramTest, LabelsTrackInsertionsAndErasures)
{
    Program p("t");
    Instr nop;
    p.append(nop);
    p.append(nop);
    LabelId label = p.internLabel("mid");
    p.bindLabel(label, 1);

    // Insertion before the label position, default mode: the label keeps
    // pointing at the original instruction.
    p.insertBefore(1, nop, /*before_label=*/false);
    EXPECT_EQ(p.labelPos(label), 2u);

    // before_label mode: the label moves onto the inserted instruction.
    p.insertBefore(2, nop, /*before_label=*/true);
    EXPECT_EQ(p.labelPos(label), 2u);

    p.erase(0);
    EXPECT_EQ(p.labelPos(label), 1u);
    // Erasing exactly at the label: label stays, pointing at successor.
    p.erase(1);
    EXPECT_EQ(p.labelPos(label), 1u);
}

TEST(ProgramTest, ValidateCatchesProblems)
{
    Program p("t");
    Instr b;
    b.op = Opcode::kBeq;
    b.target = p.internLabel("nowhere");
    p.append(b);
    EXPECT_NE(p.validate(), "");  // unbound label

    Program q("t2");
    Instr add;
    add.op = Opcode::kAdd;
    q.append(add);
    EXPECT_NE(q.validate(), "");  // falls off the end

    Program r("t3");
    Instr halt;
    halt.op = Opcode::kHalt;
    r.append(halt);
    EXPECT_EQ(r.validate(), "");
}

TEST(BuilderTest, BuildsValidProgram)
{
    ProgramBuilder b("sum");
    b.movi(1, 0)
        .movi(2, 10)
        .label("loop")
        .add(1, 1, 2)
        .subi(2, 2, 1)
        .movi(3, 0)
        .bne(2, 3, "loop")
        .halt();
    Program p = b.take();
    EXPECT_EQ(p.validate(), "");
    EXPECT_EQ(p.size(), 7u);
    EXPECT_EQ(p.labelPos(*p.findLabel("loop")), 2u);
}

TEST(BuilderTest, DuplicateLabelThrows)
{
    ProgramBuilder b("dup");
    b.label("x");
    EXPECT_THROW(b.label("x"), std::runtime_error);
}

TEST(BuilderTest, UnboundLabelThrowsOnTake)
{
    ProgramBuilder b("bad");
    b.jmp("missing");
    EXPECT_THROW(b.take(), std::runtime_error);
}

TEST(ProgramTest, MakeLabelAtGeneratesUniqueNames)
{
    Program p("t");
    Instr nop;
    p.append(nop);
    LabelId a = p.makeLabelAt(0);
    LabelId b = p.makeLabelAt(0);
    EXPECT_NE(p.labelName(a), p.labelName(b));
}

}  // namespace
}  // namespace gecko::ir
