#include <gtest/gtest.h>

#include <set>

#include "compiler/checkpoint_insertion.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/region_formation.hpp"
#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::compiler {
namespace {

using ir::Opcode;
using ir::Program;
using ir::ProgramBuilder;

TEST(CheckpointInsertionTest, ChecksLiveInsAtBoundaries)
{
    ProgramBuilder b("t");
    b.movi(1, 10)
        .movi(2, 0)
        .label("head")
        .add(2, 2, 1)
        .subi(1, 1, 1)
        .movi(3, 0)
        .bne(1, 3, "head")
        .out(0, 2)
        .halt();
    Program p = b.take();
    RegionFormation::run(p, {});
    auto seeds = CheckpointInsertion::run(p);

    ASSERT_GE(seeds.size(), 2u);
    // The loop-header region must checkpoint the loop-carried registers.
    std::size_t head = p.labelPos(*p.findLabel("head"));
    // The label now points at the first ckpt of the header's entry
    // sequence (inserted before the boundary).
    std::size_t i = head;
    std::set<int> ckpt_regs;
    while (p.at(i).op == Opcode::kCkpt) {
        ckpt_regs.insert(p.at(i).rs1);
        ++i;
    }
    EXPECT_EQ(p.at(i).op, Opcode::kBoundary);
    int id = p.at(i).imm;
    EXPECT_TRUE(ckpt_regs.count(1));
    EXPECT_TRUE(ckpt_regs.count(2));
    EXPECT_TRUE(seeds[static_cast<std::size_t>(id)].liveIn & regBit(1));
    EXPECT_TRUE(seeds[static_cast<std::size_t>(id)].liveIn & regBit(2));
}

TEST(CheckpointInsertionTest, BoundaryIdsAreSequential)
{
    Program p = workloads::build("bitcnt");
    RegionFormation::run(p, {});
    auto seeds = CheckpointInsertion::run(p);
    int expected = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p.at(i).op == Opcode::kBoundary) {
            EXPECT_EQ(p.at(i).imm, expected++);
        }
    }
    EXPECT_EQ(static_cast<std::size_t>(expected), seeds.size());
}

TEST(PipelineTest, NvpIsUntouched)
{
    Program p = workloads::build("crc16");
    std::size_t n = p.size();
    CompiledProgram out = compile(p, Scheme::kNvp);
    EXPECT_EQ(out.prog.size(), n);
    EXPECT_TRUE(out.regions.empty());
    EXPECT_EQ(out.stats.ckptsAfterPruning, 0);
}

class PipelineWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PipelineWorkloadTest, GeckoPipelineInvariants)
{
    CompiledProgram out =
        compile(workloads::build(GetParam()), Scheme::kGecko);

    EXPECT_GT(out.regions.size(), 0u);
    EXPECT_EQ(out.prog.validate(), "");

    // Every boundary numbered and matching its region record.
    std::set<int> seen;
    for (std::size_t i = 0; i < out.prog.size(); ++i) {
        const ir::Instr& ins = out.prog.at(i);
        if (ins.op == Opcode::kBoundary) {
            ASSERT_GE(ins.imm, 0);
            ASSERT_LT(static_cast<std::size_t>(ins.imm),
                      out.regions.size());
            EXPECT_TRUE(seen.insert(ins.imm).second)
                << "duplicate region id";
            EXPECT_EQ(out.regions[static_cast<std::size_t>(ins.imm)]
                          .boundaryIdx,
                      i);
        }
        if (ins.op == Opcode::kCkpt) {
            EXPECT_GE(ins.imm, 0);
            EXPECT_LT(ins.imm, kMaxSlots);
        }
    }
    EXPECT_EQ(seen.size(), out.regions.size());

    // Every region: live-in = checkpointed ∪ recovered.
    for (const RegionInfo& info : out.regions) {
        RegMask covered = 0;
        for (const CkptSpec& ck : info.ckpts)
            covered |= regBit(ck.reg);
        for (const RecoverySpec& rs : info.recovery)
            covered |= regBit(rs.reg);
        if (info.parentId >= 0) {
            const RegionInfo& parent =
                out.regions[static_cast<std::size_t>(info.parentId)];
            for (const CkptSpec& ck : parent.ckpts)
                covered |= regBit(ck.reg);
            for (const RecoverySpec& rs : parent.recovery)
                covered |= regBit(rs.reg);
        }
        EXPECT_EQ(covered & info.liveIn, info.liveIn)
            << "region " << info.id << " cannot restore all live-ins";
    }

    // Pruning must remove something on nontrivial programs, and stats
    // must be consistent.
    EXPECT_EQ(out.stats.numRegions,
              static_cast<int>(out.regions.size()));
    EXPECT_LE(out.stats.ckptsAfterPruning + 0,
              out.stats.ckptsBeforePruning +
                  out.stats.numRegions * 16 /* colouring fix-ups */);
    EXPECT_GE(out.stats.recoveryBlocks, 0);
}

TEST_P(PipelineWorkloadTest, WcetBoundHolds)
{
    PipelineConfig config;
    config.maxRegionCycles = 20000;
    CompiledProgram out =
        compile(workloads::build(GetParam()), Scheme::kGecko, config);
    for (const RegionInfo& info : out.regions) {
        EXPECT_LE(info.wcetCycles, config.maxRegionCycles)
            << "region " << info.id << " exceeds the power-on budget";
    }
}

TEST_P(PipelineWorkloadTest, PruningReducesCheckpoints)
{
    CompiledProgram pruned =
        compile(workloads::build(GetParam()), Scheme::kGecko);
    CompiledProgram unpruned =
        compile(workloads::build(GetParam()), Scheme::kGeckoNoPrune);
    EXPECT_LE(pruned.stats.ckptsAfterPruning,
              unpruned.stats.ckptsAfterPruning);
    if (pruned.stats.ckptsBeforePruning > 2) {
        EXPECT_GT(pruned.stats.recoveryBlocks +
                      pruned.stats.cleanEliminated,
                  0)
            << "expected at least one prunable checkpoint";
    }
}

TEST_P(PipelineWorkloadTest, RatchetHasNoRecoveryBlocks)
{
    CompiledProgram out =
        compile(workloads::build(GetParam()), Scheme::kRatchet);
    EXPECT_EQ(out.stats.recoveryBlocks, 0);
    // Nothing pruned; colouring conflict fix-ups may only add stores.
    EXPECT_GE(out.stats.ckptsAfterPruning, out.stats.ckptsBeforePruning);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineWorkloadTest,
                         ::testing::ValuesIn(workloads::benchmarkNames()),
                         [](const auto& info) { return info.param; });

TEST(PipelineTest, CodeSizeOverheadIsBounded)
{
    // §VII-C reports ~6% binary overhead on average; allow generous slack
    // but catch runaway instrumentation.
    std::vector<double> overheads;
    for (const std::string& name : workloads::benchmarkNames()) {
        CompiledProgram out =
            compile(workloads::build(name), Scheme::kGecko);
        overheads.push_back(out.stats.codeSizeOverhead());
    }
    for (double o : overheads)
        EXPECT_LT(o, 1.5);
}

}  // namespace
}  // namespace gecko::compiler
