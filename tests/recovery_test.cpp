#include <gtest/gtest.h>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/dominators.hpp"
#include "compiler/recovery_block.hpp"
#include "ir/builder.hpp"

namespace gecko::compiler {
namespace {

using ir::Opcode;
using ir::Program;
using ir::ProgramBuilder;

struct Analyses {
    Cfg cfg;
    ReachingDefs rdefs;
    AliasAnalysis aa;
    Dominators dom;

    explicit Analyses(const Program& p)
        : cfg(Cfg::build(p)), rdefs(ReachingDefs::build(p, cfg)),
          aa(AliasAnalysis::build(p, cfg, rdefs)),
          dom(Dominators::build(cfg))
    {
    }

    RecoveryBuilder::Context ctx(const Program& p) const
    {
        return {p, cfg, rdefs, aa, dom};
    }
};

/** Find the instruction index of the n-th occurrence of `op`. */
std::size_t
findOp(const Program& p, Opcode op, int nth = 0)
{
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == op && nth-- == 0)
            return i;
    return Program::npos;
}

TEST(RecoveryBlockTest, ConstantIsPrunable)
{
    // r2 = 42; boundary — recovery: movi r2, 42.
    ProgramBuilder b("t");
    b.movi(1, 1)
        .movi(2, 42)
        .nop();
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    b.peek();
    Program p = b.out(0, 2).halt().take();
    // Manually place a boundary before the out.
    std::size_t out_pos = findOp(p, Opcode::kOut);
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 2, regBit(2));
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->code.size(), 1u);
    EXPECT_EQ(spec->code[0].op, Opcode::kMovi);
    EXPECT_EQ(spec->code[0].imm, 42);
    EXPECT_TRUE(spec->dependsOn.empty());
}

TEST(RecoveryBlockTest, DerivedValueUsesTerminal)
{
    // r3 = r1 << 2, with r1 also live-in: recovery recomputes r3 from r1.
    ProgramBuilder b("t");
    Program p = b.movi(1, 5)
                    .shli(3, 1, 2)
                    .out(0, 3)
                    .out(0, 1)
                    .halt()
                    .take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    RegMask live_in = regBit(1) | regBit(3);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 3, live_in);
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->code.size(), 1u);
    EXPECT_EQ(spec->code[0].op, Opcode::kShl);
    ASSERT_EQ(spec->dependsOn.size(), 1u);
    EXPECT_EQ(spec->dependsOn[0], 1);
}

TEST(RecoveryBlockTest, AmbiguousDefFails)
{
    // Two defs of r2 reach the boundary: not reconstructible.
    ProgramBuilder b("t");
    Program p = b.movi(1, 1)
                    .beq(1, 0, "else")
                    .movi(2, 10)
                    .jmp("join")
                    .label("else")
                    .movi(2, 20)
                    .label("join")
                    .out(0, 2)
                    .halt()
                    .take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 2, regBit(2));
    EXPECT_FALSE(spec.has_value());
}

TEST(RecoveryBlockTest, InputReadFails)
{
    ProgramBuilder b("t");
    Program p = b.in(2, 0).out(0, 2).halt().take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 2, regBit(2));
    EXPECT_FALSE(spec.has_value());
}

TEST(RecoveryBlockTest, MutableLoadFailsReadOnlyLoadSucceeds)
{
    // r2 loaded from a mutable address -> fail; r3 from read-only -> ok.
    ProgramBuilder b("t");
    Program p = b.movi(1, 100)
                    .movi(4, 7)
                    .store(1, 0, 4)  // @100 is written: mutable
                    .load(2, 1, 0)   // r2 = @100
                    .load(3, 1, 50)  // r3 = @150 (read-only)
                    .out(0, 2)
                    .halt()
                    .take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    RegMask live_in = regBit(1) | regBit(2) | regBit(3);
    EXPECT_FALSE(
        RecoveryBuilder::build(a.ctx(p), bidx, 2, live_in).has_value());
    auto spec3 = RecoveryBuilder::build(a.ctx(p), bidx, 3, live_in);
    ASSERT_TRUE(spec3.has_value());
    EXPECT_EQ(spec3->code.back().op, Opcode::kLoad);
}

TEST(RecoveryBlockTest, ChainedSliceInOrder)
{
    // r4 = (r1 + 3) * 2 via an intermediate: slice has both defs in
    // execution order.
    ProgramBuilder b("t");
    Program p = b.movi(1, 5)
                    .addi(2, 1, 3)
                    .muli(4, 2, 2)
                    .out(0, 4)
                    .out(0, 1)
                    .halt()
                    .take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    RegMask live_in = regBit(1) | regBit(4);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 4, live_in);
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->code.size(), 2u);
    EXPECT_EQ(spec->code[0].op, Opcode::kAdd);
    EXPECT_EQ(spec->code[1].op, Opcode::kMul);
}

TEST(RecoveryBlockTest, EntryOnlyRegisterPrunesToZero)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 1).out(0, 1).halt().take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    // r9 never written: holds the boot value 0.
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 9, regBit(9));
    ASSERT_TRUE(spec.has_value());
    ASSERT_EQ(spec->code.size(), 1u);
    EXPECT_EQ(spec->code[0].op, Opcode::kMovi);
    EXPECT_EQ(spec->code[0].imm, 0);
}

TEST(RecoveryBlockTest, ValueChangedSinceDefRecursesOrFails)
{
    // r2 = r1 + 1, then r1 is overwritten before the boundary: the slice
    // cannot terminate at r1-now and must chase r1's old def (a movi:
    // succeeds).
    ProgramBuilder b("t");
    Program p = b.movi(1, 5)
                    .addi(2, 1, 1)
                    .movi(1, 99)  // r1 changed after r2's def
                    .out(0, 2)
                    .out(0, 1)
                    .halt()
                    .take();
    std::size_t out_pos = findOp(p, Opcode::kOut);
    ir::Instr boundary;
    boundary.op = Opcode::kBoundary;
    p.insertBefore(out_pos, boundary, true);

    Analyses a(p);
    std::size_t bidx = findOp(p, Opcode::kBoundary);
    RegMask live_in = regBit(1) | regBit(2);
    auto spec = RecoveryBuilder::build(a.ctx(p), bidx, 2, live_in);
    ASSERT_TRUE(spec.has_value());
    // Slice must contain movi r1,5 (old def) then addi — and must NOT
    // clobber the restored r1... which it would. The builder must refuse
    // instead, OR produce a correct slice. Verify semantics by executing.
    std::array<std::uint32_t, 16> env{};
    env[1] = 99;  // restored value of r1 at the boundary
    for (const ir::Instr& ins : spec->code) {
        // Emulate exactly what the runtime does.
        switch (ins.op) {
          case Opcode::kMovi:
            env[ins.rd] = static_cast<std::uint32_t>(ins.imm);
            break;
          default:
            if (ir::isBinaryAlu(ins.op)) {
                std::uint32_t rhs =
                    ins.useImm ? static_cast<std::uint32_t>(ins.imm)
                               : env[ins.rs2];
                env[ins.rd] = ir::evalBinary(ins.op, env[ins.rs1], rhs);
            }
            break;
        }
    }
    EXPECT_EQ(env[2], 6u) << "recovery block computed the wrong value";
}

}  // namespace
}  // namespace gecko::compiler
