#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "compiler/pipeline.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * Independent dynamic idempotence validation.
 *
 * A tiny shadow interpreter (deliberately separate from sim::Machine)
 * executes each compiled workload and checks, per *dynamic* region, that
 * no store overwrites an address the region already read without having
 * written it first (the WARAW exemption).  This is the property the
 * region-formation pass must establish; validating it on a concrete
 * trace is an end-to-end check with none of the pass's own machinery.
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;
using ir::Instr;
using ir::Opcode;

struct ShadowResult {
    std::uint64_t violations = 0;
    std::uint64_t regionsEntered = 0;
    std::uint64_t instrs = 0;
};

ShadowResult
traceRegions(const CompiledProgram& compiled)
{
    const ir::Program& p = compiled.prog;
    std::vector<std::uint32_t> mem(16384, 0);
    std::array<std::uint32_t, 16> regs{};
    std::uint32_t pc = 0;
    std::uint64_t in_counter = 0;

    std::set<std::uint32_t> reads, writes;
    ShadowResult result;

    while (result.instrs < 80'000'000) {
        ++result.instrs;
        const Instr& ins = p.at(pc);
        std::uint32_t next = pc + 1;
        switch (ins.op) {
          case Opcode::kMovi:
            regs[ins.rd] = static_cast<std::uint32_t>(ins.imm);
            break;
          case Opcode::kMov:
            regs[ins.rd] = regs[ins.rs1];
            break;
          case Opcode::kNot:
          case Opcode::kNeg:
            regs[ins.rd] = ir::evalUnary(ins.op, regs[ins.rs1]);
            break;
          case Opcode::kLoad: {
            std::uint32_t addr =
                regs[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
            regs[ins.rd] = mem.at(addr);
            if (!writes.count(addr))
                reads.insert(addr);
            break;
          }
          case Opcode::kStore: {
            std::uint32_t addr =
                regs[ins.rs1] + static_cast<std::uint32_t>(ins.imm);
            if (reads.count(addr))
                ++result.violations;  // WAR without same-region W first
            writes.insert(addr);
            mem.at(addr) = regs[ins.rs2];
            break;
          }
          case Opcode::kJmp:
            next = static_cast<std::uint32_t>(p.labelPos(ins.target));
            break;
          case Opcode::kCall:
            regs[ir::kLinkReg] = pc + 1;
            next = static_cast<std::uint32_t>(p.labelPos(ins.target));
            break;
          case Opcode::kRet:
            next = regs[ir::kLinkReg];
            break;
          case Opcode::kIn:
            regs[ins.rd] = static_cast<std::uint32_t>(
                100 + (in_counter++ % 64));
            break;
          case Opcode::kOut:
            break;
          case Opcode::kHalt:
            return result;
          case Opcode::kBoundary:
            ++result.regionsEntered;
            reads.clear();
            writes.clear();
            break;
          case Opcode::kCkpt:
            break;
          default:
            if (ir::isBinaryAlu(ins.op)) {
                std::uint32_t rhs =
                    ins.useImm ? static_cast<std::uint32_t>(ins.imm)
                               : regs[ins.rs2];
                regs[ins.rd] =
                    ir::evalBinary(ins.op, regs[ins.rs1], rhs);
            } else if (ir::isCondBranch(ins.op)) {
                if (ir::evalBranch(ins.op, regs[ins.rs1], regs[ins.rs2]))
                    next =
                        static_cast<std::uint32_t>(p.labelPos(ins.target));
            }
            break;
        }
        pc = next;
    }
    ADD_FAILURE() << "shadow interpreter did not terminate";
    return result;
}

class IdempotenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, Scheme>>
{
};

TEST_P(IdempotenceTest, NoUnprotectedWarInAnyDynamicRegion)
{
    auto [name, scheme] = GetParam();
    CompiledProgram compiled =
        compiler::compile(workloads::build(name), scheme);
    ShadowResult r = traceRegions(compiled);
    EXPECT_EQ(r.violations, 0u)
        << name << ": a dynamic region overwrote data it had read — "
           "re-execution would not be idempotent";
    EXPECT_GT(r.regionsEntered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, IdempotenceTest,
    ::testing::Combine(::testing::ValuesIn([] {
                           auto v = workloads::benchmarkNames();
                           v.push_back("sensor_loop");
                           v.push_back("sensor_app");
                           return v;
                       }()),
                       ::testing::Values(Scheme::kRatchet, Scheme::kGecko)),
    [](const auto& info) {
        std::string n = std::get<0>(info.param) + "_" +
                        compiler::schemeName(std::get<1>(info.param));
        for (char& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

}  // namespace
}  // namespace gecko
