#!/usr/bin/env bash
# Kill-and-resume differential oracle for the campaign engine
# (DESIGN.md §13).
#
# Runs a reference campaign to completion, then runs the identical
# campaign a second time but SIGKILLs it mid-flight (no cleanup, no
# signal handler — the hardest crash) and resumes it in a loop until it
# reports complete.  The two aggregate.json files must be byte-identical
# and the stdout aggregate lines must match.
#
# Usage: campaign_kill_resume.sh /path/to/campaign_runner [spec.json]
#
# With a second argument, a spec-driven phase repeats the oracle for a
# campaign configured entirely from that declarative spec file
# (scenario grid/burst axes included).
set -u

RUNNER=${1:?usage: campaign_kill_resume.sh /path/to/campaign_runner}
SPEC=${2:-}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/gecko_killres.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Big enough that the kill window reliably lands mid-campaign, small
# enough to stay a smoke test (~1-2 s per full pass on one core).
ARGS=(--threads=4 --seed=7 --workloads=sensor_loop,crc16
      --schemes=NVP,GECKO --seeds=16 --sim=0.3 --slice=0.03)

echo "== reference (uninterrupted) run"
"$RUNNER" "${ARGS[@]}" --fresh --dir="$WORK/ref" \
    >"$WORK/ref.out" 2>"$WORK/ref.err"
rc=$?
if [ $rc -ne 0 ]; then
    echo "FAIL: reference run exited $rc"
    cat "$WORK/ref.err"
    exit 1
fi

echo "== victim run, SIGKILL mid-flight"
"$RUNNER" "${ARGS[@]}" --fresh --dir="$WORK/cut" \
    >/dev/null 2>"$WORK/cut.err" &
VICTIM=$!
sleep 0.4
if kill -9 "$VICTIM" 2>/dev/null; then
    echo "   killed pid $VICTIM"
else
    # The campaign beat the timer; the oracle still checks resume
    # idempotence below, but flag it so a slow-host tune-up is visible.
    echo "   victim finished before the kill (host too fast?)"
fi
wait "$VICTIM" 2>/dev/null

done_before=$(grep -c '"state":"done"' "$WORK/cut/manifest.jsonl" \
    2>/dev/null || true)
echo "   jobs done at kill: ${done_before:-0}"

echo "== resume loop"
tries=0
until "$RUNNER" "${ARGS[@]}" --dir="$WORK/cut" \
    >"$WORK/cut.out" 2>>"$WORK/cut.err"; do
    rc=$?
    tries=$((tries + 1))
    if [ "$tries" -gt 20 ]; then
        echo "FAIL: campaign did not converge after $tries resumes (rc=$rc)"
        tail -5 "$WORK/cut.err"
        exit 1
    fi
done
echo "   converged after $tries interrupted resume(s)"

echo "== differential"
if ! cmp -s "$WORK/ref/aggregate.json" "$WORK/cut/aggregate.json"; then
    echo "FAIL: aggregate.json differs between uninterrupted and resumed"
    diff <(tr ',' '\n' <"$WORK/ref/aggregate.json") \
         <(tr ',' '\n' <"$WORK/cut/aggregate.json") | head -20
    exit 1
fi
if ! cmp -s "$WORK/ref.out" "$WORK/cut.out"; then
    echo "FAIL: stdout aggregate lines differ"
    exit 1
fi

echo "== backend invariance"
# The aggregate must not depend on the execution backend either: the
# same campaign under each explicit backend renders the same bytes as
# the ambient-backend reference (so the kill/resume property proven
# above transfers to every backend).
for be in step fast block; do
    if ! GECKO_EXEC=$be "$RUNNER" "${ARGS[@]}" --fresh \
        --dir="$WORK/be_$be" >/dev/null 2>>"$WORK/cut.err"; then
        echo "FAIL: backend $be campaign failed"
        exit 1
    fi
    if ! cmp -s "$WORK/ref/aggregate.json" "$WORK/be_$be/aggregate.json"
    then
        echo "FAIL: aggregate differs under GECKO_EXEC=$be"
        exit 1
    fi
done

if [ -n "$SPEC" ]; then
    echo "== spec-driven kill/resume ($SPEC)"
    # The spec supplies the scenario axes (grid cell, burst schedule);
    # the scale flags after --spec deliberately override its engine
    # section so the kill window lands mid-campaign.
    SARGS=(--threads=4 "--spec=$SPEC" --seeds=32 --sim=0.5 --slice=0.05)
    "$RUNNER" "${SARGS[@]}" --fresh --dir="$WORK/spec_ref" \
        >"$WORK/spec_ref.out" 2>"$WORK/spec.err"
    rc=$?
    if [ $rc -ne 0 ]; then
        echo "FAIL: spec reference run exited $rc"
        cat "$WORK/spec.err"
        exit 1
    fi
    "$RUNNER" "${SARGS[@]}" --fresh --dir="$WORK/spec_cut" \
        >/dev/null 2>>"$WORK/spec.err" &
    VICTIM=$!
    sleep 0.4
    kill -9 "$VICTIM" 2>/dev/null && \
        echo "   killed spec pid $VICTIM" || \
        echo "   spec victim finished before the kill"
    wait "$VICTIM" 2>/dev/null
    tries=0
    until "$RUNNER" "${SARGS[@]}" --dir="$WORK/spec_cut" \
        >"$WORK/spec_cut.out" 2>>"$WORK/spec.err"; do
        tries=$((tries + 1))
        if [ "$tries" -gt 20 ]; then
            echo "FAIL: spec campaign did not converge after $tries resumes"
            tail -5 "$WORK/spec.err"
            exit 1
        fi
    done
    if ! cmp -s "$WORK/spec_ref/aggregate.json" \
        "$WORK/spec_cut/aggregate.json"; then
        echo "FAIL: spec-driven aggregate differs after kill/resume"
        exit 1
    fi
    if ! cmp -s "$WORK/spec_ref.out" "$WORK/spec_cut.out"; then
        echo "FAIL: spec-driven stdout aggregate lines differ"
        exit 1
    fi
    echo "   spec-driven aggregate byte-identical"
fi

echo "PASS: resumed aggregate byte-identical to uninterrupted run"
exit 0
