#include <gtest/gtest.h>

#include "compiler/alias_analysis.hpp"
#include "compiler/cfg.hpp"
#include "compiler/liveness.hpp"
#include "ir/builder.hpp"

namespace gecko::compiler {
namespace {

using ir::Program;
using ir::ProgramBuilder;

TEST(LivenessTest, StraightLine)
{
    ProgramBuilder b("t");
    b.movi(1, 5)      // 0: def r1
        .movi(2, 7)   // 1: def r2
        .add(3, 1, 2)  // 2: use r1,r2 def r3
        .out(0, 3)     // 3: use r3
        .halt();       // 4
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    Liveness live = Liveness::build(p, cfg);

    EXPECT_EQ(live.liveIn(0), 0);  // nothing live before first def
    EXPECT_TRUE(live.liveIn(2) & regBit(1));
    EXPECT_TRUE(live.liveIn(2) & regBit(2));
    EXPECT_FALSE(live.liveIn(3) & regBit(1));  // r1 dead after add
    EXPECT_TRUE(live.liveIn(3) & regBit(3));
    EXPECT_EQ(live.liveOut(3) & regBit(3), 0);
}

TEST(LivenessTest, LoopCarriedLiveness)
{
    ProgramBuilder b("t");
    b.movi(1, 10)
        .movi(2, 0)
        .label("head")
        .add(2, 2, 1)   // r2 loop-carried
        .subi(1, 1, 1)
        .movi(3, 0)
        .bne(1, 3, "head")
        .out(0, 2)
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    Liveness live = Liveness::build(p, cfg);

    std::size_t head = p.labelPos(*p.findLabel("head"));
    EXPECT_TRUE(live.liveIn(head) & regBit(1));
    EXPECT_TRUE(live.liveIn(head) & regBit(2));
}

TEST(ReachingDefsTest, UniqueAndMergedDefs)
{
    ProgramBuilder b("t");
    b.movi(1, 1)           // 0
        .beq(1, 0, "else") // 1
        .movi(2, 10)       // 2
        .jmp("join")       // 3
        .label("else")
        .movi(2, 20)       // 4
        .label("join")
        .out(0, 2)         // 5
        .halt();           // 6
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);

    // r1 at the out: unique def at 0.
    EXPECT_EQ(rd.uniqueDefAt(5, 1), 0);
    // r2 at the out: two defs merge.
    EXPECT_EQ(rd.uniqueDefAt(5, 2), -2);
    EXPECT_EQ(rd.defsAt(5, 2).size(), 2u);
    // r3 never defined: entry def only.
    const auto& defs3 = rd.defsAt(5, 3);
    ASSERT_EQ(defs3.size(), 1u);
    EXPECT_EQ(defs3[0], ReachingDefs::kEntryDef);
}

TEST(ConstPropTest, FoldsChains)
{
    ProgramBuilder b("t");
    b.movi(1, 100)
        .addi(2, 1, 28)    // r2 = 128
        .shli(3, 2, 2)     // r3 = 512
        .load(4, 3, 4)     // addr = 512 + 4
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    EXPECT_TRUE(aa.regAt(3, 3).isConst());
    EXPECT_EQ(aa.regAt(3, 3).value, 512u);
    auto addr = aa.constAddr(3);
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(*addr, 516u);
}

TEST(ConstPropTest, MergeLosesDifferingConstants)
{
    ProgramBuilder b("t");
    b.movi(1, 1)
        .beq(1, 0, "else")
        .movi(2, 10)
        .jmp("join")
        .label("else")
        .movi(2, 20)
        .label("join")
        .load(3, 2, 0)  // base r2 not a constant here
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    std::size_t load = p.size() - 2;
    EXPECT_FALSE(aa.constAddr(load).has_value());
}

TEST(AliasTest, ConstAddressesDisambiguate)
{
    ProgramBuilder b("t");
    b.movi(1, 100)
        .movi(2, 7)
        .store(1, 0, 2)   // 2: store @100
        .store(1, 1, 2)   // 3: store @101
        .load(3, 1, 0)    // 4: load @100
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    EXPECT_EQ(aa.alias(2, 3), AliasVerdict::kNoAlias);
    EXPECT_EQ(aa.alias(2, 4), AliasVerdict::kMustAlias);
}

TEST(AliasTest, SameSymbolicBaseDifferentOffsets)
{
    ProgramBuilder b("t");
    b.in(1, 0)            // r1 unknown base
        .store(1, 0, 2)   // 1
        .store(1, 4, 2)   // 2
        .load(3, 1, 0)    // 3
        .in(1, 0)         // 4: base redefined
        .load(4, 1, 0)    // 5
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    EXPECT_EQ(aa.alias(1, 2), AliasVerdict::kNoAlias);
    EXPECT_EQ(aa.alias(1, 3), AliasVerdict::kMustAlias);
    // Different reaching defs of the base: may alias.
    EXPECT_EQ(aa.alias(1, 5), AliasVerdict::kMayAlias);
}

TEST(AliasTest, ReadOnlyAddressClassification)
{
    ProgramBuilder b("t");
    b.movi(1, 200)
        .movi(2, 3)
        .store(1, 0, 2)   // writes @200
        .load(3, 1, 0)    // @200: not read-only
        .load(4, 1, 50)   // @250: read-only (never stored)
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    EXPECT_FALSE(aa.isReadOnlyLoad(3));
    EXPECT_TRUE(aa.isReadOnlyLoad(4));
}

TEST(AliasTest, UnknownStorePoisonsReadOnly)
{
    ProgramBuilder b("t");
    b.in(1, 0)
        .store(1, 0, 2)   // unknown address store
        .movi(2, 300)
        .load(3, 2, 0)
        .halt();
    Program p = b.take();
    Cfg cfg = Cfg::build(p);
    ReachingDefs rd = ReachingDefs::build(p, cfg);
    AliasAnalysis aa = AliasAnalysis::build(p, cfg, rd);

    EXPECT_FALSE(aa.isReadOnlyLoad(3));
}

}  // namespace
}  // namespace gecko::compiler
