#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "sim/intermittent_sim.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * The compiled-out overhead guard.
 *
 * This translation unit is built with `-DGECKO_TRACE=0` (see
 * tests/CMakeLists.txt), so every GECKO_TRACE_EVENT/GECKO_TRACE_TIME
 * here must expand to `((void)0)` — no argument evaluation, no buffer
 * interaction — proving the macro contract a whole-build
 * `-DGECKO_TRACE_EVENTS=OFF` relies on.
 *
 * The second half checks the other side of the zero-cost claim:
 * tracing (compiled in or out) is purely observational.  Execution
 * statistics, NVM images, and I/O streams are bit-identical whether or
 * not a trace buffer is installed — the instrumented library run here
 * against itself with tracing idle vs recording.
 */

#if GECKO_TRACE
#error "trace_off_test must be compiled with GECKO_TRACE=0"
#endif

namespace gecko {
namespace {

TEST(TraceOffTest, MacroArgumentsAreNotEvaluated)
{
    int evaluations = 0;
    // maybe_unused: with the macros compiled out the lambda is, by
    // design, never called — that absence is what this test asserts.
    [[maybe_unused]] auto bump = [&evaluations]() -> std::uint64_t {
        ++evaluations;
        return 0;
    };
    GECKO_TRACE_EVENT(trace::EventKind::kBoot, 0, bump(), bump());
    GECKO_TRACE_TIME(static_cast<double>(bump()));
    EXPECT_EQ(evaluations, 0)
        << "GECKO_TRACE=0 must compile macro arguments away";
}

TEST(TraceOffTest, MacroIgnoresAnInstalledBuffer)
{
    trace::Buffer buffer;
    trace::BufferScope scope(&buffer);
    GECKO_TRACE_EVENT(trace::EventKind::kBoot, 0, 1, 2);
    GECKO_TRACE_TIME(1.0);
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.time(), 0.0);
}

/** One intermittent run's observable outcome. */
struct Observed {
    std::uint64_t cycles = 0;
    std::uint64_t completions = 0;
    std::uint64_t reboots = 0;
    std::uint64_t jitComplete = 0;
    std::vector<std::uint32_t> out0;
    std::vector<std::uint32_t> memory;

    bool operator==(const Observed&) const = default;
};

Observed
runOnce(bool installBuffer, trace::Buffer* buffer)
{
    trace::BufferScope scope(installBuffer ? buffer : nullptr);

    const auto& dev = device::DeviceDb::msp430fr5994();
    auto compiled = compiler::compile(workloads::build("sensor_loop"),
                                      compiler::Scheme::kGecko);
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    sim::SimConfig cfg;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    energy::SquareWaveHarvester wave(3.3, 5.0, 0.004, 0.004);
    sim::IntermittentSim simulation(compiled, dev, cfg, wave, io);
    simulation.run(0.03);

    Observed o;
    o.cycles = simulation.machine().stats.cycles;
    o.completions = simulation.machine().stats.completions;
    o.reboots = simulation.stats.reboots;
    o.jitComplete = simulation.stats.jitCheckpointsComplete;
    o.out0 = io.output(0).values();
    o.memory = simulation.nvm().data();
    return o;
}

TEST(TraceOffTest, TracingIsObservationallyPure)
{
    trace::Buffer buffer;
    Observed idle = runOnce(false, nullptr);
    Observed recorded = runOnce(true, &buffer);
    EXPECT_TRUE(idle == recorded)
        << "installing a trace buffer changed the simulation: cycles "
        << idle.cycles << " vs " << recorded.cycles << ", reboots "
        << idle.reboots << " vs " << recorded.reboots;
    if (trace::compiledIn())
        EXPECT_GT(buffer.size(), 0u)
            << "the instrumented library should have recorded events";
    else
        EXPECT_EQ(buffer.size(), 0u);
    // And a second idle run is bit-identical to the first: the cycle
    // counts a GECKO_TRACE_EVENTS=OFF build asserts against are exactly
    // these, so any nonzero tracing residue would show here.
    Observed again = runOnce(false, nullptr);
    EXPECT_TRUE(idle == again);
}

}  // namespace
}  // namespace gecko
