#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/attack_schedule.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "attack/spatial.hpp"
#include "compiler/pipeline.hpp"
#include "fault/campaign.hpp"
#include "fault/injectors.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "exp/parallel.hpp"
#include "exp/rng.hpp"
#include "exp/thread_pool.hpp"
#include "sim/intermittent_sim.hpp"
#include "trace/export.hpp"
#include "trace/invariants.hpp"
#include "trace/trace.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * The golden-trace differential suite.
 *
 * A canonical workload x scheme matrix runs under intermittent power
 * (plus EMI-attack scenarios), records its protocol events, and the
 * merged JSONL trace is diffed byte-for-byte against the checked-in
 * goldens in tests/golden/.  On top of the golden match, the suite
 * asserts the determinism contracts directly: step() and fast dispatch
 * trace identically, and the merged trace is byte-identical across
 * thread-pool widths.
 *
 * Regenerating goldens (after an intentional schema or protocol
 * change — never to silence a diff you can't explain):
 *
 *     GECKO_UPDATE_GOLDEN=1 ./build/tests/trace_test
 *
 * then review the golden diff like source code.  The goldens are
 * defined at the default global seed; a nonzero GECKO_SEED skips the
 * golden comparison (the determinism properties still run).
 */

namespace gecko {
namespace {

using compiler::Scheme;

/** One canonical traced scenario. */
struct Scenario {
    std::string workload;
    Scheme scheme;
    bool attack = false;  ///< EMI-attack scenario vs plain harvesting

    std::string label() const
    {
        return workload + "|" + compiler::schemeName(scheme) +
               (attack ? "|attack" : "|harvest");
    }
};

std::vector<Scenario>
scenarioMatrix()
{
    std::vector<Scenario> m;
    for (const char* w : {"crc16", "sensor_loop"})
        for (Scheme s :
             {Scheme::kNvp, Scheme::kRatchet, Scheme::kGecko})
            m.push_back({w, s, false});
    // The paper's attack victim under a scheduled resonant tone.
    m.push_back({"sensor_loop", Scheme::kNvp, true});
    m.push_back({"sensor_loop", Scheme::kGecko, true});
    return m;
}

/**
 * Run one scenario into whatever trace buffer is current.  Every call
 * owns its simulator; the compiled program is rebuilt per call so
 * scenarios are order-independent (no shared lazy caches).
 */
void
runScenario(const Scenario& sc, bool fastDispatch)
{
    const auto& dev = device::DeviceDb::msp430fr5994();
    auto compiled =
        compiler::compile(workloads::build(sc.workload), sc.scheme);
    sim::IoHub io;
    workloads::setupIo(sc.workload, io);

    sim::SimConfig cfg;
    cfg.jitRamWords = 4;  // small CTPL padding keeps the suite fast
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;

    std::unique_ptr<energy::Harvester> harvester;
    if (sc.attack)
        harvester = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);
    else
        harvester = std::make_unique<energy::SquareWaveHarvester>(
            3.3, 5.0, 0.004, 0.004);

    sim::IntermittentSim simulation(compiled, dev, cfg, *harvester, io);
    simulation.machine().setFastDispatch(fastDispatch);

    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    attack::EmiSource source(rig, 27e6, 35.0);
    attack::AttackSchedule schedule(
        {{0.005, 0.012, 27e6, 35.0}, {0.018, 0.025, 27e6, 35.0}});
    if (sc.attack) {
        simulation.setEmiSource(&source);
        simulation.setAttackSchedule(&schedule);
    }
    simulation.run(0.03);
}

/** Trace one scenario into a standalone buffer. */
trace::Buffer
traceScenario(const Scenario& sc, bool fastDispatch)
{
    trace::Buffer buffer;
    buffer.setLabel(sc.label());
    {
        trace::BufferScope scope(&buffer);
        runScenario(sc, fastDispatch);
    }
    return buffer;
}

/**
 * The spatial arc: the attack victim irradiated from one cell of an
 * 8x8 injection-point grid (DESIGN.md §15).  The tone rides through a
 * GridRig, so the on-edge emits a kSpatialHit carrying the cell index
 * and its coupling factor.
 */
void
runSpatialArcScenario()
{
    const auto& dev = device::DeviceDb::msp430fr5994();
    auto compiled =
        compiler::compile(workloads::build("sensor_loop"), Scheme::kGecko);
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);

    sim::SimConfig cfg;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;

    energy::ConstantHarvester harvester(3.3, 5.0);
    sim::IntermittentSim simulation(compiled, dev, cfg, harvester, io);

    attack::RemoteRig base(dev, analog::MonitorKind::kAdc, 0.1);
    attack::SpatialGrid grid(8, 8);
    attack::GridRig rig(base, grid, 3, 5);
    attack::EmiSource source(rig, 27e6, 35.0);
    source.setGridTag(rig.cell(), rig.couplingMilli(27e6));
    attack::AttackSchedule schedule(
        {{0.005, 0.012, 27e6, 35.0}, {0.018, 0.025, 27e6, 35.0}});
    simulation.setEmiSource(&source);
    simulation.setAttackSchedule(&schedule);
    simulation.run(0.03);
}

/**
 * The instruction-fault arc: one campaign case whose glitch skips an
 * instruction mid-interval (kInstrFault), followed by the post-glitch
 * checkpoint mask and recovery.
 */
void
runInstrFaultArcScenario()
{
    fault::CaseSpec spec;
    spec.workload = "crc16";
    spec.scheme = Scheme::kGecko;
    spec.injector = fault::InjectorKind::kInstrSkip;
    spec.seed = 0x9e3779b97f4a7c16ull;
    fault::runCase(spec, 0.4);
}

/**
 * Record the whole matrix into `collector` on `pool`, then the two
 * serial fault arcs (spatial hit, instruction fault) that extend the
 * golden with the PR's new event kinds.
 */
void
traceMatrix(trace::Collector& collector, exp::ThreadPool& pool)
{
    const std::vector<Scenario> matrix = scenarioMatrix();
    exp::parallelMap(pool, matrix, [&](const Scenario& sc) {
        trace::CaseScope scope(
            &collector, sc.label(),
            static_cast<std::uint64_t>(&sc - matrix.data()));
        runScenario(sc, true);
        return 0;
    });
    {
        trace::CaseScope scope(&collector, "spatial_arc", matrix.size());
        runSpatialArcScenario();
    }
    {
        trace::CaseScope scope(&collector, "instr_fault_arc",
                               matrix.size() + 1);
        runInstrFaultArcScenario();
    }
}

std::vector<std::string>
splitLines(const std::string& text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/**
 * Diff `actual` against the golden file, printing the first divergent
 * line with +-3 lines of context on mismatch.  With GECKO_UPDATE_GOLDEN
 * set, rewrites the golden instead (the only sanctioned way to change
 * files under tests/golden/).
 */
void
expectGoldenMatch(const std::string& name, const std::string& actual)
{
    const std::string path = std::string(GECKO_GOLDEN_DIR) + "/" + name;
    const char* update = std::getenv("GECKO_UPDATE_GOLDEN");
    if (update && *update) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "[golden] regenerated " << path << " ("
                  << actual.size() << " bytes)\n";
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " -- generate it with GECKO_UPDATE_GOLDEN=1";
    std::ostringstream os;
    os << in.rdbuf();
    const std::string golden = os.str();
    if (golden == actual)
        return;

    const std::vector<std::string> a = splitLines(golden);
    const std::vector<std::string> b = splitLines(actual);
    std::size_t first = 0;
    while (first < a.size() && first < b.size() && a[first] == b[first])
        ++first;
    std::ostringstream diff;
    diff << "golden mismatch: " << name << " (golden " << a.size()
         << " lines, actual " << b.size() << " lines, first divergence "
         << "at line " << first + 1 << ")\n";
    const std::size_t lo = first >= 3 ? first - 3 : 0;
    for (std::size_t i = lo; i <= first + 3; ++i) {
        if (i < a.size())
            diff << "  golden " << i + 1 << ": " << a[i] << "\n";
        if (i < b.size())
            diff << "  actual " << i + 1 << ": " << b[i] << "\n";
    }
    diff << "If the change is intentional, regenerate with "
            "GECKO_UPDATE_GOLDEN=1 and review the golden diff.";
    FAIL() << diff.str();
}

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!trace::compiledIn())
            GTEST_SKIP() << "tracing compiled out (GECKO_TRACE=0)";
    }
};

TEST_F(TraceTest, RingBufferKeepsNewestAndCountsDrops)
{
    trace::Buffer small(8);
    for (int i = 0; i < 20; ++i) {
        small.setTime(i * 0.5);
        small.emit(trace::EventKind::kWakeSignal, 0,
                   static_cast<std::uint64_t>(i), 0);
    }
    EXPECT_EQ(small.size(), 8u);
    EXPECT_EQ(small.dropped(), 12u);
    std::vector<trace::Event> events = small.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].a, 12 + i) << "oldest events evicted first";
        EXPECT_EQ(events[i].seq, 12 + i) << "seq survives eviction";
    }
}

TEST_F(TraceTest, EventNamesAndIdsAreStable)
{
    // Wire IDs are append-only; goldens and external tooling key on
    // them.  Spot-check the schema anchors.
    EXPECT_EQ(static_cast<int>(trace::EventKind::kRegionCommit), 1);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kBoot), 16);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kJitSaveStart), 32);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kJitRestore), 48);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kThresholdCross), 64);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kEmiOn), 80);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kSpatialHit), 82);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kFaultInject), 96);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kInstrFault), 97);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kDefenseAnomaly), 112);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kDefenseModeChange), 113);
    EXPECT_EQ(static_cast<int>(trace::EventKind::kDefenseRatchetTrip),
              114);
    EXPECT_STREQ(trace::eventName(trace::EventKind::kRegionCommit),
                 "region_commit");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kJitSaveTorn),
                 "jit_save_torn");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kFaultInject),
                 "fault_inject");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kSpatialHit),
                 "spatial_hit");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kInstrFault),
                 "instr_fault");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kDefenseAnomaly),
                 "defense_anomaly");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kDefenseModeChange),
                 "defense_mode_change");
    EXPECT_STREQ(trace::eventName(trace::EventKind::kDefenseRatchetTrip),
                 "defense_ratchet_trip");
}

TEST_F(TraceTest, MacroIsInertWithoutACurrentBuffer)
{
    ASSERT_EQ(trace::current(), nullptr);
    // Must not crash and must not observably do anything.
    GECKO_TRACE_EVENT(trace::EventKind::kBoot, 0, 1, 2);
    GECKO_TRACE_TIME(1.0);
    EXPECT_EQ(trace::current(), nullptr);
}

TEST_F(TraceTest, FastAndSlowDispatchTraceIdentically)
{
    for (const Scenario& sc : scenarioMatrix()) {
        trace::Buffer fast = traceScenario(sc, true);
        trace::Buffer slow = traceScenario(sc, false);
        ASSERT_GT(fast.size(), 0u) << sc.label();
        EXPECT_TRUE(fast.events() == slow.events())
            << sc.label()
            << ": step() and fast dispatch must emit identical traces";
    }
}

TEST_F(TraceTest, MergedTraceIsThreadCountInvariant)
{
    trace::Collector serial;
    {
        exp::ThreadPool one(1);
        traceMatrix(serial, one);
    }
    trace::Collector parallel;
    {
        exp::ThreadPool eight(8);
        traceMatrix(parallel, eight);
    }
    EXPECT_EQ(trace::toJsonl(serial), trace::toJsonl(parallel))
        << "merged trace bytes must not depend on the pool width";
}

TEST_F(TraceTest, ProtocolInvariantsHoldPerScenario)
{
    for (const Scenario& sc : scenarioMatrix()) {
        trace::Buffer buffer = traceScenario(sc, true);
        std::vector<std::string> violations =
            trace::checkInvariants(buffer.events());
        EXPECT_TRUE(violations.empty())
            << sc.label() << ": "
            << (violations.empty() ? "" : violations.front()) << " ("
            << violations.size() << " violations)";
    }
}

TEST_F(TraceTest, AttackScenarioCarriesTheAttackStoryline)
{
    // The traced attack run must contain the causal chain the paper's
    // figures tell: tone keyed on, monitor trips flagged as
    // attack-window trips, and under GECKO a detection event.
    trace::Buffer buffer =
        traceScenario({"sensor_loop", Scheme::kGecko, true}, true);
    bool sawEmiOn = false, sawEmiOff = false, sawAttackTrip = false;
    for (const trace::Event& e : buffer.events()) {
        const auto kind = static_cast<trace::EventKind>(e.kind);
        if (kind == trace::EventKind::kEmiOn)
            sawEmiOn = true;
        if (kind == trace::EventKind::kEmiOff)
            sawEmiOff = true;
        if (kind == trace::EventKind::kMonitorTrip &&
            (e.flags & trace::kFlagAttack))
            sawAttackTrip = true;
    }
    EXPECT_TRUE(sawEmiOn) << "tone on-edge missing";
    EXPECT_TRUE(sawEmiOff) << "tone off-edge missing";
    EXPECT_TRUE(sawAttackTrip)
        << "no monitor trip inside the attack window";
}

TEST_F(TraceTest, GoldenTraceMatrix)
{
    if (exp::globalSeed() != 0)
        GTEST_SKIP() << "goldens are defined at the default seed";
    trace::Collector collector;
    exp::ThreadPool one(1);
    traceMatrix(collector, one);
    ASSERT_GT(collector.totalEvents(), 0u);
    EXPECT_EQ(collector.totalDropped(), 0u)
        << "golden scenarios must fit the ring";
    const std::string jsonl = trace::toJsonl(collector);
    // The two serial arcs must actually exercise their event kinds —
    // a golden without them would silently lose the new coverage.
    EXPECT_NE(jsonl.find("\"spatial_hit\""), std::string::npos)
        << "spatial_arc emitted no kSpatialHit";
    EXPECT_NE(jsonl.find("\"instr_fault\""), std::string::npos)
        << "instr_fault_arc emitted no kInstrFault";
    expectGoldenMatch("trace_matrix.jsonl", jsonl);
}

/**
 * The adaptive-defense scenario (DESIGN.md §11): the trace-test victim
 * with the online controller armed, under the same two-burst tone as
 * the attack scenarios.  Hysteresis knobs are shortened so the full
 * detect → escalate → de-escalate arc fits the 30 ms run.
 */
void
runDefenseArcScenario()
{
    const auto& dev = device::DeviceDb::msp430fr5994();
    auto compiled =
        compiler::compile(workloads::build("sensor_loop"), Scheme::kGecko);
    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);

    sim::SimConfig cfg;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;
    cfg.defense.enabled = true;
    cfg.defense.calmSamples = 4;
    cfg.defense.decayPerSample = 0.2;

    energy::ConstantHarvester harvester(3.3, 5.0);
    sim::IntermittentSim simulation(compiled, dev, cfg, harvester, io);

    attack::RemoteRig rig(dev, analog::MonitorKind::kAdc, 0.1);
    attack::EmiSource source(rig, 27e6, 35.0);
    attack::AttackSchedule schedule(
        {{0.005, 0.012, 27e6, 35.0}, {0.018, 0.025, 27e6, 35.0}});
    simulation.setEmiSource(&source);
    simulation.setAttackSchedule(&schedule);
    simulation.run(0.03);
}

TEST_F(TraceTest, GoldenDefenseArc)
{
    if (exp::globalSeed() != 0)
        GTEST_SKIP() << "goldens are defined at the default seed";
    trace::Collector collector;
    {
        trace::CaseScope scope(&collector, "defense_arc", 0);
        runDefenseArcScenario();
    }

    trace::Buffer probe;
    {
        trace::BufferScope scope(&probe);
        runDefenseArcScenario();
    }
    // The arc the controller must tell: an anomaly fires, the mode
    // ladder climbs to at least kUnderAttack, work still commits after
    // the first escalation, and the run ends back at kNominal.
    bool sawAnomaly = false;
    std::uint64_t maxMode = 0, lastMode = 0;
    bool commitAfterEscalation = false, escalated = false;
    for (const trace::Event& e : probe.events()) {
        const auto kind = static_cast<trace::EventKind>(e.kind);
        if (kind == trace::EventKind::kDefenseAnomaly)
            sawAnomaly = true;
        if (kind == trace::EventKind::kDefenseModeChange) {
            maxMode = std::max(maxMode, e.a);
            lastMode = e.a;
            escalated = true;
        }
        if (kind == trace::EventKind::kRegionCommit && escalated)
            commitAfterEscalation = true;
    }
    EXPECT_TRUE(sawAnomaly) << "no defense_anomaly event";
    EXPECT_GE(maxMode, 2u) << "never reached under_attack";
    EXPECT_EQ(lastMode, 0u) << "did not de-escalate back to nominal";
    EXPECT_TRUE(commitAfterEscalation)
        << "no forward progress after escalation";
    EXPECT_TRUE(trace::checkInvariants(probe.events()).empty());

    expectGoldenMatch("defense_arc.jsonl", trace::toJsonl(collector));
}

TEST_F(TraceTest, ExportersAgreeWithExtension)
{
    trace::Collector collector;
    {
        trace::CaseScope scope(&collector, "export", 0);
        runScenario({"crc16", Scheme::kGecko, false}, true);
    }

    const std::string jsonl = trace::toJsonl(collector);
    ASSERT_FALSE(jsonl.empty());
    EXPECT_EQ(jsonl.rfind("{\"schema\":\"gecko-trace\"", 0), 0u);

    const std::string chrome = trace::toChromeTrace(collector);
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(chrome.find("thread_name"), std::string::npos);

    const std::string dir = ::testing::TempDir();
    const std::string jsonlPath = dir + "/gecko_trace_test.jsonl";
    const std::string chromePath = dir + "/gecko_trace_test.json";
    ASSERT_TRUE(trace::writeTraceFile(collector, jsonlPath));
    ASSERT_TRUE(trace::writeTraceFile(collector, chromePath));
    auto slurp = [](const std::string& p) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    EXPECT_EQ(slurp(jsonlPath), jsonl);
    EXPECT_EQ(slurp(chromePath), chrome);
    std::remove(jsonlPath.c_str());
    std::remove(chromePath.c_str());
}

TEST_F(TraceTest, CaseScopeWithNullCollectorSuppressesTracing)
{
    trace::Buffer outer;
    trace::BufferScope outerScope(&outer);
    {
        // A null collector must install nullptr, not inherit `outer`:
        // with GECKO_THREADS=1 case bodies run inline on the caller's
        // thread and would otherwise leak into the outer buffer.
        trace::CaseScope scope(nullptr, "suppressed", 0);
        EXPECT_EQ(trace::current(), nullptr);
        GECKO_TRACE_EVENT(trace::EventKind::kBoot, 0, 0, 0);
    }
    EXPECT_EQ(trace::current(), &outer);
    EXPECT_EQ(outer.size(), 0u);
}

}  // namespace
}  // namespace gecko
