#include <gtest/gtest.h>

#include "compiler/loop_analysis.hpp"
#include "compiler/region_formation.hpp"
#include "compiler/wcet.hpp"
#include "ir/builder.hpp"

namespace gecko::compiler {
namespace {

using ir::Program;
using ir::ProgramBuilder;

struct Analyses {
    Cfg cfg;
    Dominators dom;
    ReachingDefs rdefs;
    AliasAnalysis aa;
    std::vector<NaturalLoop> loops;

    explicit Analyses(const Program& p)
        : cfg(Cfg::build(p)), dom(Dominators::build(cfg)),
          rdefs(ReachingDefs::build(p, cfg)),
          aa(AliasAnalysis::build(p, cfg, rdefs)),
          loops(LoopAnalysis::analyze(p, cfg, dom, rdefs, aa))
    {
    }
};

TEST(LoopAnalysisTest, CountedUpLoop)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 10)
                    .label("head")
                    .addi(3, 3, 5)
                    .addi(1, 1, 1)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    ASSERT_EQ(a.loops.size(), 1u);
    ASSERT_TRUE(a.loops[0].tripBound.has_value());
    EXPECT_EQ(*a.loops[0].tripBound, 10);
    EXPECT_EQ(a.loops[0].counterReg, 1);
    auto range = a.loops[0].counterRange();
    EXPECT_EQ(range.first, 0);
    EXPECT_GE(range.second, 10);
}

TEST(LoopAnalysisTest, CountedDownLoopWithBne)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 64)
                    .movi(2, 0)
                    .label("head")
                    .addi(3, 3, 1)
                    .subi(1, 1, 1)
                    .bne(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    ASSERT_EQ(a.loops.size(), 1u);
    ASSERT_TRUE(a.loops[0].tripBound.has_value());
    EXPECT_EQ(*a.loops[0].tripBound, 64);
}

TEST(LoopAnalysisTest, StriddenLoop)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 100)
                    .label("head")
                    .addi(1, 1, 7)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    ASSERT_TRUE(a.loops[0].tripBound.has_value());
    EXPECT_EQ(*a.loops[0].tripBound, (100 + 6) / 7);
}

TEST(LoopAnalysisTest, DataDependentLoopIsUnbounded)
{
    // The counter comes from an input: no static bound.
    ProgramBuilder b("t");
    Program p = b.in(1, 0)
                    .movi(2, 0)
                    .label("head")
                    .subi(1, 1, 1)
                    .bne(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    ASSERT_EQ(a.loops.size(), 1u);
    EXPECT_FALSE(a.loops[0].tripBound.has_value());
}

TEST(LoopAnalysisTest, MultipleCounterDefsAreUnbounded)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 10)
                    .label("head")
                    .addi(1, 1, 1)
                    .addi(1, 1, 1)  // second in-loop def of the counter
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    EXPECT_FALSE(a.loops[0].tripBound.has_value());
}

TEST(LoopAnalysisTest, NestedLoopsInnermostFirst)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 4)
                    .label("outer")
                    .movi(3, 0)
                    .movi(4, 8)
                    .label("inner")
                    .addi(3, 3, 1)
                    .blt(3, 4, "inner")
                    .addi(1, 1, 1)
                    .blt(1, 2, "outer")
                    .halt()
                    .take();
    Analyses a(p);
    ASSERT_EQ(a.loops.size(), 2u);
    // analyze() orders innermost (smaller) first.
    EXPECT_LT(a.loops[0].blocks.size(), a.loops[1].blocks.size());
    EXPECT_EQ(*a.loops[0].tripBound, 8);
    EXPECT_EQ(*a.loops[1].tripBound, 4);
}

TEST(LoopAnalysisTest, InternalBoundaryDetection)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 4)
                    .label("head")
                    .addi(1, 1, 1)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    EXPECT_FALSE(LoopAnalysis::hasInternalBoundary(p, a.cfg, a.loops[0]));

    std::size_t head = p.labelPos(*p.findLabel("head"));
    ir::Instr boundary;
    boundary.op = ir::Opcode::kBoundary;
    p.insertBefore(head + 1, boundary);
    Analyses a2(p);
    EXPECT_TRUE(
        LoopAnalysis::hasInternalBoundary(p, a2.cfg, a2.loops[0]));
}

TEST(RangeAnalysisTest, ConstPlusCounterAddress)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 50)
                    .movi(4, 100)  // base
                    .label("head")
                    .add(5, 4, 1)
                    .store(5, 0, 3)  // addr in [100, 150]
                    .addi(1, 1, 1)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    Analyses a(p);
    RangeAnalysis ranges(p, a.cfg, a.dom, a.rdefs, a.aa, a.loops);

    std::size_t store = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == ir::Opcode::kStore)
            store = i;
    auto r = ranges.addrRange(store);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->first, 100);
    EXPECT_GE(r->second, 149);
    EXPECT_LE(r->second, 151);  // one step of slack allowed
}

TEST(RangeAnalysisTest, DisjointArraysProvedByRanges)
{
    // Store into [100,150), load from [400,450): the WAR pass must not
    // cut between them even though indices are loop-variant.
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 50)
                    .movi(4, 400)
                    .movi(6, 100)
                    .label("head")
                    .add(5, 4, 1)
                    .load(3, 5, 0)   // read 400+i
                    .add(5, 6, 1)
                    .store(5, 0, 3)  // write 100+i
                    .addi(1, 1, 1)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    int before = 0;
    RegionFormationConfig cfg;
    cfg.cutLoopHeaders = false;  // the GECKO pipeline's setting
    RegionFormation::run(p, cfg);
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == ir::Opcode::kBoundary)
            ++before;
    // Only structural boundaries (entry + pre-halt), no WAR cut.
    EXPECT_EQ(before, 2);
}

TEST(RangeAnalysisTest, OverlappingArraysStillCut)
{
    // Same array read and written with different loop indices: may
    // overlap, so the anti-dependence must be cut.
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 50)
                    .movi(4, 100)
                    .label("head")
                    .add(5, 4, 1)
                    .load(3, 5, 1)   // read 101+i
                    .add(5, 4, 1)
                    .store(5, 0, 3)  // write 100+i — overlaps reads
                    .addi(1, 1, 1)
                    .blt(1, 2, "head")
                    .halt()
                    .take();
    RegionFormationConfig cfg;
    cfg.cutLoopHeaders = false;
    RegionFormation::run(p, cfg);
    int boundaries = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == ir::Opcode::kBoundary)
            ++boundaries;
    EXPECT_GT(boundaries, 2);
}

TEST(WcetLoopTest, CountedLoopFoldsIntoWcet)
{
    ProgramBuilder b("t");
    Program p = b.movi(1, 0)
                    .movi(2, 100)
                    .label("head")
                    .addi(3, 3, 1)   // 1 cycle
                    .addi(1, 1, 1)   // 1 cycle
                    .blt(1, 2, "head")  // 2 cycles
                    .halt()
                    .take();
    RegionFormationConfig cfg;
    cfg.cutLoopHeaders = false;
    RegionFormation::run(p, cfg);  // entry + pre-halt boundaries only
    auto regions = Wcet::analyze(p);
    ASSERT_GE(regions.size(), 1u);
    long total = 0;
    for (auto& [idx, c] : regions)
        total = std::max(total, c);
    // 100 iterations x 4 cycles plus prologue: must account for the
    // whole loop, not a single pass.
    EXPECT_GE(total, 400);
    EXPECT_LE(total, 500);
}

TEST(WcetLoopTest, UnboundedLoopGetsHeaderBoundary)
{
    ProgramBuilder b("t");
    Program p = b.in(1, 0)
                    .movi(2, 0)
                    .label("head")
                    .subi(1, 1, 1)
                    .bne(1, 2, "head")
                    .halt()
                    .take();
    RegionFormationConfig cfg;
    cfg.cutLoopHeaders = false;
    RegionFormation::run(p, cfg);
    int inserted = Wcet::enforceLoopInvariant(p);
    EXPECT_GE(inserted, 1);
    std::size_t head = p.labelPos(*p.findLabel("head"));
    EXPECT_EQ(p.at(head).op, ir::Opcode::kBoundary);
    // Now analyzable.
    EXPECT_NO_THROW(Wcet::analyze(p));
}

TEST(WcetLoopTest, EnforceDemotesOversizedLoopToPerIteration)
{
    ProgramBuilder b("t");
    b.movi(1, 0).movi(2, 1000);
    b.label("head");
    for (int i = 0; i < 20; ++i)
        b.addi(3, 3, 1);
    b.addi(1, 1, 1).blt(1, 2, "head").halt();
    Program p = b.take();
    RegionFormationConfig cfg;
    cfg.cutLoopHeaders = false;
    RegionFormation::run(p, cfg);
    // Whole loop ~22k cycles; force 1k-cycle regions.
    Wcet::enforce(p, 1000);
    for (auto& [idx, c] : Wcet::analyze(p))
        EXPECT_LE(c, 1000);
}

}  // namespace
}  // namespace gecko::compiler
