#include <gtest/gtest.h>

#include <bitset>

#include "compiler/pipeline.hpp"
#include "exp/rng.hpp"
#include "exp/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/corpus.hpp"
#include "fault/injectors.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/jit_checkpoint.hpp"
#include "sim/nvm.hpp"
#include "workloads/workloads.hpp"

/**
 * @file
 * The fault-injection subsystem: CRC/guarded-slot primitives, JIT-image
 * validity lifecycle, injector mutations, corpus round-trips, and the
 * campaign's determinism and discrimination guarantees (NVP corrupts,
 * GECKO never does) on a small grid.
 */

namespace gecko::fault {
namespace {

using compiler::Scheme;
using sim::JitCheckpoint;
using sim::Nvm;

TEST(CrcTest, DetectsEverySingleBitFlip)
{
    std::uint32_t words[4] = {0xdeadbeef, 0, 42, 0x80000000};
    std::uint32_t good = sim::crc32Words(words, 4);
    for (int w = 0; w < 4; ++w) {
        for (int b = 0; b < 32; ++b) {
            words[w] ^= 1u << b;
            EXPECT_NE(sim::crc32Words(words, 4), good)
                << "word " << w << " bit " << b;
            words[w] ^= 1u << b;
        }
    }
    EXPECT_EQ(sim::crc32Words(words, 4), good);
}

TEST(CrcTest, AllZeroDataValidatesAgainstZeroCrc)
{
    std::uint32_t zeros[8] = {};
    EXPECT_EQ(sim::crc32Words(zeros, 8), 0u);
}

TEST(GuardedSlotTest, RepairsPrimaryCorruptionFromShadow)
{
    Nvm nvm(64);
    nvm.writeSlot(3, 1, 0xdeadbeef);
    EXPECT_EQ(nvm.slotWrites, 2u);  // value+crc line and shadow line

    nvm.slots[3][1] ^= 0x10;  // disturb the primary value word
    sim::SlotRead sr = nvm.readSlotGuarded(3, 1);
    EXPECT_TRUE(sr.repaired);
    EXPECT_FALSE(sr.unrecoverable);
    EXPECT_EQ(sr.value, 0xdeadbeefu);
}

TEST(GuardedSlotTest, DoubleCorruptionIsFlaggedUnrecoverable)
{
    Nvm nvm(64);
    nvm.writeSlot(0, 0, 77);
    nvm.slots[0][0] ^= 2;
    nvm.slotShadow[0][0] ^= 4;
    sim::SlotRead sr = nvm.readSlotGuarded(0, 0);
    EXPECT_TRUE(sr.unrecoverable);
}

TEST(GuardedSlotTest, CrossPairRecoveryCoversMultiWordHits)
{
    // Multi-word hits on the same slot pair: any surviving value word
    // is vouched for by the sibling check word, and two agreeing value
    // words survive the loss of both check words.
    {
        Nvm nvm(64);  // primary value + primary CRC hit
        nvm.writeSlot(2, 3, 0xcafe0001);
        nvm.slots[2][3] ^= 0x40;
        nvm.slotCrc[2][3] ^= 0x9;
        sim::SlotRead sr = nvm.readSlotGuarded(2, 3);
        EXPECT_TRUE(sr.repaired);
        EXPECT_EQ(sr.value, 0xcafe0001u);
    }
    {
        Nvm nvm(64);  // shadow value + primary CRC hit
        nvm.writeSlot(2, 3, 0xcafe0002);
        nvm.slotShadow[2][3] ^= 0x40;
        nvm.slotCrc[2][3] ^= 0x9;
        sim::SlotRead sr = nvm.readSlotGuarded(2, 3);
        EXPECT_TRUE(sr.repaired);
        EXPECT_EQ(sr.value, 0xcafe0002u);
    }
    {
        Nvm nvm(64);  // both check words hit, value words agree
        nvm.writeSlot(2, 3, 0xcafe0003);
        nvm.slotCrc[2][3] ^= 0x1;
        nvm.slotShadowCrc[2][3] ^= 0x2;
        sim::SlotRead sr = nvm.readSlotGuarded(2, 3);
        EXPECT_TRUE(sr.repaired);
        EXPECT_EQ(sr.value, 0xcafe0003u);
    }
    {
        Nvm nvm(64);  // value word plus every witness for it: flagged
        nvm.writeSlot(2, 3, 0xcafe0004);
        nvm.slots[2][3] ^= 0x40;
        nvm.slotCrc[2][3] ^= 0x9;
        nvm.slotShadow[2][3] ^= 0x100;
        sim::SlotRead sr = nvm.readSlotGuarded(2, 3);
        EXPECT_TRUE(sr.unrecoverable);
    }
}

TEST(GuardedSlotTest, ScrubReArmsRepairedPair)
{
    Nvm nvm(64);
    nvm.writeSlot(1, 0, 0xfeed);
    nvm.slots[1][0] ^= 0x8;
    sim::SlotRead sr = nvm.readSlotGuarded(1, 0);
    ASSERT_TRUE(sr.repaired);
    nvm.scrubSlot(1, 0, sr.value);
    // A later hit on the *other* copy would have combined with the
    // latent primary corruption without the scrub; post-scrub the
    // rewritten primary pair absorbs it outright.
    nvm.slotShadow[1][0] ^= 0x8;
    sim::SlotRead again = nvm.readSlotGuarded(1, 0);
    EXPECT_FALSE(again.unrecoverable);
    EXPECT_EQ(again.value, 0xfeedu);
}

// Regression pins for the Ratchet slot-fault gap (EXPERIMENTS.md
// 12-injector table): the exact seed-42 campaign cases where rollback's
// raw primary-word reads let slot faults through before every scheme
// restored through the guarded read path.  Each case must now match
// its golden run.
TEST(CampaignRegressionTest, RatchetSlotFaultSurfacingSeedsRepair)
{
    struct Pin {
        const char* injector;
        std::uint64_t seed;
        std::int32_t word;
    };
    static const Pin kPins[] = {
        {"bitflip", 1644212235285245758ull, 4},
        {"bitflip", 2581850694104297520ull, 4},
        {"multibitflip", 5094330416887092295ull, 12},
        {"multibitflip", 8403125170301223055ull, 4},
        {"multibitflip", 4820481869918891970ull, 0},
        {"multibitflip", 9871016863728879931ull, 9},
        {"staleimage", 12781882269776521291ull, -1},
    };
    for (const Pin& pin : kPins) {
        CaseSpec spec;
        spec.workload = "sensor_loop";
        spec.scheme = Scheme::kRatchet;
        ASSERT_TRUE(injectorFromName(pin.injector, &spec.injector));
        spec.seed = pin.seed;
        spec.injectAtOverride = 0;
        spec.wordOverride = pin.word;
        CaseResult result = runCase(spec);
        EXPECT_EQ(result.outcome, CaseOutcome::kOk)
            << formatCorpusLine(result);
    }
}

struct ImageRig {
    compiler::CompiledProgram prog;
    Nvm nvm{1024};
    sim::IoHub io;
    sim::Machine machine;

    ImageRig()
        : prog(compiler::compile(workloads::build("bitcnt"), Scheme::kGecko)),
          machine(prog, nvm, io)
    {
        workloads::setupIo("bitcnt", io);
        std::uint64_t consumed = 0;
        machine.run(300, &consumed);
    }
};

TEST(JitImageTest, ValidityLifecycle)
{
    ImageRig rig;
    // Virgin all-zero area validates (cold start).
    EXPECT_TRUE(JitCheckpoint::imageValid(rig.nvm));

    JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                              [](int) { return true; });
    EXPECT_TRUE(JitCheckpoint::imageValid(rig.nvm));

    // Consume-once: the same image must not roll forward twice.
    JitCheckpoint::consumeImage(rig.nvm);
    EXPECT_FALSE(JitCheckpoint::imageValid(rig.nvm));

    JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                              [](int) { return true; });
    EXPECT_TRUE(JitCheckpoint::imageValid(rig.nvm));
}

TEST(JitImageTest, InjectorsInvalidateImage)
{
    exp::Rng rng(99);
    {
        ImageRig rig;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [](int) { return true; });
        corruptAckWord(rig.nvm, rng);
        EXPECT_FALSE(JitCheckpoint::imageValid(rig.nvm));
    }
    {
        ImageRig rig;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [](int) { return true; });
        corruptJitWord(rig.nvm, 1, rng);
        EXPECT_FALSE(JitCheckpoint::imageValid(rig.nvm));
    }
    {
        // Stale substitution: an older internally consistent image
        // fails the epoch comparison after the current one's consume.
        ImageRig rig;
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [](int) { return true; });
        auto old = rig.nvm.jit;
        JitCheckpoint::consumeImage(rig.nvm);
        JitCheckpoint::checkpoint(rig.machine, rig.nvm,
                                  [](int) { return true; });
        substituteJitImage(rig.nvm, old);
        EXPECT_FALSE(JitCheckpoint::imageValid(rig.nvm));
    }
}

TEST(InjectorTest, FlipBitsFlipsExactlyN)
{
    exp::Rng rng(5);
    for (int n = 1; n <= 3; ++n) {
        std::uint32_t v = 0xcafef00d;
        std::uint32_t flipped = flipBits(v, n, rng);
        EXPECT_EQ(std::bitset<32>(v ^ flipped).count(),
                  static_cast<std::size_t>(n));
    }
}

TEST(InjectorTest, NameTablesRoundTrip)
{
    for (int i = 0; i < kInjectorKinds; ++i) {
        auto kind = static_cast<InjectorKind>(i);
        InjectorKind back;
        ASSERT_TRUE(injectorFromName(injectorName(kind), &back));
        EXPECT_EQ(back, kind);
    }
    InjectorKind sink;
    EXPECT_FALSE(injectorFromName("bogus", &sink));
}

TEST(CorpusTest, LineRoundTrip)
{
    CaseResult r;
    r.spec.workload = "crc16";
    r.spec.scheme = Scheme::kGeckoNoPrune;
    r.spec.injector = InjectorKind::kTornWrite;
    r.spec.seed = 0xabcdef0123ull;
    r.injectAt = 7;
    r.word = 19;
    r.outcome = CaseOutcome::kDiverged;

    CorpusEntry entry;
    std::string err;
    ASSERT_TRUE(parseCorpusLine(formatCorpusLine(r), &entry, &err)) << err;
    EXPECT_EQ(entry.spec.workload, "crc16");
    EXPECT_EQ(entry.spec.scheme, Scheme::kGeckoNoPrune);
    EXPECT_EQ(entry.spec.injector, InjectorKind::kTornWrite);
    EXPECT_EQ(entry.spec.seed, 0xabcdef0123ull);
    EXPECT_EQ(entry.spec.injectAtOverride, 7);
    EXPECT_EQ(entry.spec.wordOverride, 19);
    EXPECT_EQ(entry.outcome, CaseOutcome::kDiverged);

    std::uint64_t seed = 0;
    auto entries = parseCorpus(formatCorpus(1234, {r}), &seed);
    EXPECT_EQ(seed, 1234u);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].spec.seed, r.spec.seed);
}

TEST(CampaignTest, GridCoversEveryInjectorAndScheme)
{
    CampaignConfig config;
    config.cases = 300;
    auto specs = makeCampaignCases(config);
    ASSERT_EQ(specs.size(), 300u);
    std::array<int, kInjectorKinds> injectorSeen{};
    std::array<int, 4> schemeSeen{};
    for (const CaseSpec& s : specs) {
        ++injectorSeen[static_cast<std::size_t>(s.injector)];
        for (std::size_t i = 0; i < config.schemes.size(); ++i)
            if (config.schemes[i] == s.scheme)
                ++schemeSeen[i];
        if (isSimLevel(s.injector)) {
            EXPECT_EQ(s.workload, "sensor_loop");
        }
    }
    for (int i = 0; i < kInjectorKinds; ++i)
        EXPECT_GT(injectorSeen[static_cast<std::size_t>(i)], 0)
            << injectorName(static_cast<InjectorKind>(i));
    for (int count : schemeSeen)
        EXPECT_GT(count, 0);
    // Case seeds are pairwise distinct (mixSeed avalanche).
    EXPECT_NE(specs[0].seed, specs[1].seed);
    EXPECT_NE(specs[1].seed, specs[2].seed);
}

TEST(CampaignTest, DeterministicAcrossThreadCounts)
{
    CampaignConfig config;
    config.cases = 144;
    config.seed = 7;

    exp::ThreadPool serial(1);
    config.pool = &serial;
    CampaignResult a = runCampaign(config);

    exp::ThreadPool wide(3);
    config.pool = &wide;
    CampaignResult b = runCampaign(config);

    EXPECT_EQ(a.report, b.report);
    EXPECT_EQ(a.corpus, b.corpus);
    EXPECT_EQ(a.nvpCorruptions, b.nvpCorruptions);
    EXPECT_EQ(a.crcRejects, b.crcRejects);
}

TEST(CampaignTest, NvpCorruptsAndGeckoSurvives)
{
    CampaignConfig config;
    config.cases = 288;
    config.seed = 7;
    exp::ThreadPool pool(3);
    config.pool = &pool;
    CampaignResult result = runCampaign(config);

    EXPECT_TRUE(result.geckoClean);
    EXPECT_EQ(result.geckoCorruptions, 0u);
    EXPECT_GT(result.nvpCorruptions, 0u);
    // The defences actually fired along the way.
    EXPECT_GT(result.crcRejects, 0u);
    EXPECT_GT(result.corruptedRestores, 0u);
}

TEST(CampaignTest, InstructionFaultsAreContainedAndTalliedSeparately)
{
    // An instr-only mix over NVP vs GECKO: instruction-stream faults
    // are a distinct threat class — they must never count against
    // geckoClean (no storage guard can see a wrong architectural
    // value), but GECKO's post-glitch checkpoint mask keeps its
    // corruption *rate* at or below NVP's (instrContained()).
    CampaignConfig config;
    config.cases = 288;
    config.seed = 7;
    config.workloads = {"crc16", "sensor_loop"};
    config.schemes = {Scheme::kNvp, Scheme::kGecko};
    config.injectorMix = {InjectorKind::kInstrSkip,
                          InjectorKind::kOpcodeCorrupt,
                          InjectorKind::kOperandFlip};
    exp::ThreadPool pool(3);
    config.pool = &pool;
    CampaignResult result = runCampaign(config);

    EXPECT_TRUE(result.geckoClean);
    EXPECT_EQ(result.geckoCorruptions, 0u);
    EXPECT_EQ(result.nvpCorruptions, 0u);  // no storage-class cases ran
    EXPECT_GT(result.instrGeckoCases, 0u);
    EXPECT_GT(result.instrNvpCases, 0u);
    EXPECT_GT(result.instrNvpCorruptions, 0u);
    EXPECT_TRUE(result.instrContained());
    // The report carries the per-class containment line.
    EXPECT_NE(result.report.find("instr gecko="), std::string::npos);
}

TEST(CampaignTest, CorpusCasesReplayStandalone)
{
    CampaignConfig config;
    config.cases = 144;
    config.seed = 7;
    exp::ThreadPool pool(2);
    config.pool = &pool;
    CampaignResult result = runCampaign(config);
    ASSERT_FALSE(result.corpusCases.empty());

    // Replay through the corpus *text*, exactly like the driver's
    // --replay path: parse each line back into a spec and re-run it.
    std::uint64_t seed = 0;
    auto entries = parseCorpus(result.corpus, &seed);
    EXPECT_EQ(seed, config.seed);
    ASSERT_EQ(entries.size(), result.corpusCases.size());
    for (const CorpusEntry& entry : entries) {
        CaseResult rerun = runCase(entry.spec);
        EXPECT_EQ(rerun.outcome, entry.outcome)
            << formatCorpusLine(rerun);
        EXPECT_TRUE(isCorruption(rerun.outcome));
    }
}

}  // namespace
}  // namespace gecko::fault
