#!/usr/bin/env bash
# Kill-and-resume differential oracle for the adversarial attack
# optimizer (DESIGN.md §16).
#
# Runs a reference search to completion, then runs the identical search
# a second time but SIGKILLs it mid-flight (no cleanup, no signal
# handler — the hardest crash) and resumes it in a loop until it
# reports complete.  The resumed run's stdout matrix and every
# per-defense best-attack spec must be byte-identical to the
# uninterrupted run's: the search journal, the per-round campaigns and
# the standalone best evaluation are all durable state.
#
# Usage: adversary_kill_resume.sh /path/to/fig_adversarial
set -u

BENCH=${1:?usage: adversary_kill_resume.sh /path/to/fig_adversarial}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/gecko_advres.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Big enough that the kill window reliably lands mid-search, small
# enough to stay a smoke test (a few seconds per full pass).
ARGS=(--threads=4 --defenses=static,adaptive --rounds=4 --restarts=2
      --seeds=4 --sim=0.25)

echo "== reference (uninterrupted) search"
"$BENCH" "${ARGS[@]}" --fresh --dir="$WORK/ref" \
    >"$WORK/ref.out" 2>"$WORK/ref.err"
rc=$?
if [ $rc -ne 0 ]; then
    echo "FAIL: reference search exited $rc"
    cat "$WORK/ref.err"
    exit 1
fi

echo "== victim search, SIGKILL mid-flight"
"$BENCH" "${ARGS[@]}" --fresh --dir="$WORK/cut" \
    >/dev/null 2>"$WORK/cut.err" &
VICTIM=$!
sleep 0.4
if kill -9 "$VICTIM" 2>/dev/null; then
    echo "   killed pid $VICTIM"
else
    # The search beat the timer; the oracle still checks resume
    # idempotence below, but flag it so a slow-host tune-up is visible.
    echo "   victim finished before the kill (host too fast?)"
fi
wait "$VICTIM" 2>/dev/null

rounds_before=$(grep -h '"type":"round"' "$WORK"/cut/*/search.jsonl \
    2>/dev/null | wc -l)
echo "   rounds journaled at kill: ${rounds_before:-0}"

echo "== resume loop"
tries=0
until "$BENCH" "${ARGS[@]}" --dir="$WORK/cut" \
    >"$WORK/cut.out" 2>>"$WORK/cut.err"; do
    rc=$?
    tries=$((tries + 1))
    if [ "$tries" -gt 20 ]; then
        echo "FAIL: search did not converge after $tries resumes (rc=$rc)"
        tail -5 "$WORK/cut.err"
        exit 1
    fi
done
echo "   converged after $tries interrupted resume(s)"

echo "== differential"
if ! cmp -s "$WORK/ref.out" "$WORK/cut.out"; then
    echo "FAIL: stdout matrix differs between uninterrupted and resumed"
    diff "$WORK/ref.out" "$WORK/cut.out" | head -20
    exit 1
fi
for d in static adaptive; do
    if ! cmp -s "$WORK/ref/$d/best_spec.json" \
        "$WORK/cut/$d/best_spec.json"; then
        echo "FAIL: $d best_spec.json differs after kill/resume"
        diff <(tr ',' '\n' <"$WORK/ref/$d/best_spec.json") \
             <(tr ',' '\n' <"$WORK/cut/$d/best_spec.json") | head -20
        exit 1
    fi
done

echo "PASS: resumed matrix and best specs byte-identical"
exit 0
