#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compiler/checkpoint_insertion.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/region_formation.hpp"
#include "compiler/slot_coloring.hpp"
#include "compiler/wcet.hpp"
#include "ir/builder.hpp"
#include "workloads/workloads.hpp"

namespace gecko::compiler {
namespace {

using ir::Opcode;
using ir::Program;
using ir::ProgramBuilder;

/** Compile a loop whose single region re-checkpoints modified regs. */
Program
loopProgram()
{
    ProgramBuilder b("t");
    return b.movi(1, 0)
        .movi(2, 100)
        .label("head")
        .addi(1, 1, 1)
        .addi(3, 3, 7)
        .blt(1, 2, "head")
        .out(0, 3)
        .halt()
        .take();
}

TEST(SlotColoringTest, SelfConflictGetsFixRegion)
{
    Program p = loopProgram();
    // Default formation config puts the boundary at the loop header:
    // one region per iteration, so the loop-modified registers
    // self-conflict.
    RegionFormation::run(p, {});

    auto seeds = CheckpointInsertion::run(p);
    std::size_t regions_before = seeds.size();
    SlotColoring::Result result =
        SlotColoring::run(p, seeds, /*cleanElim=*/false);

    EXPECT_GE(result.fixRegions, 1);
    EXPECT_GT(seeds.size(), regions_before);
    // The fix region records its parent.
    bool has_parent = false;
    for (const auto& seed : seeds)
        if (seed.parentId >= 0)
            has_parent = true;
    EXPECT_TRUE(has_parent);
}

TEST(SlotColoringTest, ConsecutiveDirtyCheckpointsGetDistinctSlots)
{
    Program p = loopProgram();
    RegionFormation::run(p, {});

    auto seeds = CheckpointInsertion::run(p);
    SlotColoring::run(p, seeds, false);

    // Collect slots per register in program order; the loop-modified
    // registers (r1, r3) must alternate between their region and fix
    // region checkpoints.
    std::map<int, std::set<int>> slots;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == Opcode::kCkpt)
            slots[p.at(i).rs1].insert(p.at(i).imm);
    EXPECT_GE(slots[1].size(), 2u) << "loop counter needs two slots";
    EXPECT_GE(slots[3].size(), 2u) << "accumulator needs two slots";
}

TEST(SlotColoringTest, AllSlotsWithinBudget)
{
    for (const std::string& name : workloads::benchmarkNames()) {
        auto compiled =
            compile(workloads::build(name), Scheme::kGecko);
        for (std::size_t i = 0; i < compiled.prog.size(); ++i) {
            const ir::Instr& ins = compiled.prog.at(i);
            if (ins.op == Opcode::kCkpt) {
                EXPECT_GE(ins.imm, 0) << name;
                EXPECT_LT(ins.imm, kMaxSlots) << name;
            }
        }
    }
}

TEST(SlotColoringTest, CleanEliminationInheritsSlots)
{
    // Two consecutive regions where r2 is unchanged: the second region's
    // r2 checkpoint is redundant and should be inherited.
    ProgramBuilder b("t");
    Program p = b.movi(1, 100)
                    .movi(2, 7)   // r2: live across both regions, clean
                    .load(3, 1, 0)
                    .store(1, 0, 2)  // WAR -> boundary before this store
                    .add(4, 2, 3)
                    .out(0, 4)
                    .out(0, 2)
                    .halt()
                    .take();
    RegionFormation::run(p, {});
    auto seeds = CheckpointInsertion::run(p);
    SlotColoring::Result r = SlotColoring::run(p, seeds, true);

    // r2 should be checkpointed once and inherited afterwards.
    int r2_ckpts = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (p.at(i).op == Opcode::kCkpt && p.at(i).rs1 == 2)
            ++r2_ckpts;
    EXPECT_GE(r.cleanEliminated, 1);
    EXPECT_EQ(r2_ckpts, 1);
    bool inherited_r2 = false;
    for (const auto& inh : r.inherited)
        if (inh.reg == 2)
            inherited_r2 = true;
    EXPECT_TRUE(inherited_r2);
}

TEST(SlotColoringTest, CleanEliminationNeverBreaksSelfConflicts)
{
    // Regression guard for the subtle bug: removing a clean body
    // checkpoint must not leave a dirty kept-to-itself cycle uncoloured.
    for (const std::string& name :
         {std::string("qsort"), std::string("dijkstra"),
          std::string("stringsearch")}) {
        auto compiled = compile(workloads::build(name), Scheme::kGecko);
        // Re-derive the conflict graph invariant dynamically: no two
        // consecutive dynamic instances of the same kept checkpoint may
        // share a slot while the register changed in between.  Handled
        // exhaustively by the crash-consistency suite; here we at least
        // re-run the pipeline and demand it did not throw and coloured
        // everything.
        for (std::size_t i = 0; i < compiled.prog.size(); ++i) {
            if (compiled.prog.at(i).op == Opcode::kCkpt) {
                ASSERT_GE(compiled.prog.at(i).imm, 0) << name;
            }
        }
    }
}

TEST(SlotColoringTest, RestoreTablesCoverEveryRegionLiveIn)
{
    for (const std::string& name : workloads::benchmarkNames()) {
        auto compiled = compile(workloads::build(name), Scheme::kGecko);
        for (const RegionInfo& info : compiled.regions) {
            RegMask covered = 0;
            for (const CkptSpec& ck : info.ckpts)
                covered |= regBit(ck.reg);
            for (const RecoverySpec& rs : info.recovery)
                covered |= regBit(rs.reg);
            if (info.parentId >= 0) {
                const RegionInfo& parent =
                    compiled.regions[static_cast<std::size_t>(
                        info.parentId)];
                for (const CkptSpec& ck : parent.ckpts)
                    covered |= regBit(ck.reg);
                for (const RecoverySpec& rs : parent.recovery)
                    covered |= regBit(rs.reg);
            }
            EXPECT_EQ(covered & info.liveIn, info.liveIn)
                << name << " region " << info.id;
        }
    }
}

}  // namespace
}  // namespace gecko::compiler
