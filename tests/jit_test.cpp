#include <gtest/gtest.h>

#include "ir/assembler.hpp"
#include "sim/jit_checkpoint.hpp"
#include "sim/machine.hpp"

namespace gecko::sim {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;

CompiledProgram
tinyProgram()
{
    return compiler::compile(ir::Assembler::assemble("t", R"(
        movi r1, 11
        movi r2, 22
        in   r3, 1
        halt
)"),
                             Scheme::kNvp);
}

TEST(JitCheckpointTest, RoundTripRestoresVolatileState)
{
    CompiledProgram prog = tinyProgram();
    Nvm nvm(1024);
    IoHub io;
    Machine m(prog, nvm, io);
    m.regs()[1] = 0xdead;
    m.regs()[15] = 0xbeef;
    m.setPc(3);
    m.pendingIn()[1] = 2;
    m.pendingOut()[0] = 5;

    auto res = JitCheckpoint::checkpoint(m, nvm, [](int) { return true; });
    EXPECT_TRUE(res.complete);
    EXPECT_EQ(res.wordsWritten, static_cast<int>(Nvm::kJitWords));
    EXPECT_EQ(nvm.jit[Nvm::kJitAckIndex], 1u);  // toggled from 0

    Machine m2(prog, nvm, io);
    JitCheckpoint::restore(m2, nvm);
    EXPECT_EQ(m2.regs()[1], 0xdeadu);
    EXPECT_EQ(m2.regs()[15], 0xbeefu);
    EXPECT_EQ(m2.pc(), 3u);
    EXPECT_EQ(m2.pendingIn()[1], 2u);
    EXPECT_EQ(m2.pendingOut()[0], 5u);
}

TEST(JitCheckpointTest, AckTogglesEveryCompleteCheckpoint)
{
    CompiledProgram prog = tinyProgram();
    Nvm nvm(1024);
    IoHub io;
    Machine m(prog, nvm, io);
    auto always = [](int) { return true; };
    JitCheckpoint::checkpoint(m, nvm, always);
    EXPECT_EQ(nvm.jit[Nvm::kJitAckIndex], 1u);
    JitCheckpoint::checkpoint(m, nvm, always);
    EXPECT_EQ(nvm.jit[Nvm::kJitAckIndex], 0u);
}

TEST(JitCheckpointTest, TornCheckpointLeavesAckUntouched)
{
    CompiledProgram prog = tinyProgram();
    Nvm nvm(1024);
    IoHub io;
    Machine m(prog, nvm, io);
    m.regs()[0] = 0x1111;
    m.regs()[5] = 0x5555;

    // Die after 6 words.
    int budget = 6;
    auto spend = [&budget](int) { return budget-- > 0; };
    auto res = JitCheckpoint::checkpoint(m, nvm, spend);
    EXPECT_FALSE(res.complete);
    EXPECT_EQ(res.wordsWritten, 6);
    EXPECT_EQ(nvm.jit[Nvm::kJitAckIndex], 0u);  // never toggled
    EXPECT_EQ(nvm.jit[0], 0x1111u);             // early words landed
    EXPECT_EQ(nvm.jit[5], 0x5555u);
    EXPECT_EQ(nvm.jit[10], 0u);                 // later words did not
}

TEST(JitCheckpointTest, TornImageRestoresMixedState)
{
    // The data-corruption vector: old and new words interleaved.
    CompiledProgram prog = tinyProgram();
    Nvm nvm(1024);
    IoHub io;
    Machine m(prog, nvm, io);
    auto always = [](int) { return true; };

    m.regs()[1] = 100;
    m.regs()[10] = 200;
    JitCheckpoint::checkpoint(m, nvm, always);  // complete, old state

    m.regs()[1] = 111;
    m.regs()[10] = 222;
    int budget = 3;
    auto spend = [&budget](int) { return budget-- > 0; };
    JitCheckpoint::checkpoint(m, nvm, spend);  // torn after r0..r2

    Machine m2(prog, nvm, io);
    JitCheckpoint::restore(m2, nvm);
    EXPECT_EQ(m2.regs()[1], 111u);   // new value (written before death)
    EXPECT_EQ(m2.regs()[10], 200u);  // stale value — inconsistent image
}

}  // namespace
}  // namespace gecko::sim
