#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>

#include "attack/attack_schedule.hpp"
#include "campaign/snapshot.hpp"
#include "attack/emi_source.hpp"
#include "attack/rigs.hpp"
#include "compiler/pipeline.hpp"
#include "device/device_db.hpp"
#include "energy/harvester.hpp"
#include "exp/rng.hpp"
#include "fault/campaign.hpp"
#include "workloads/workloads.hpp"
#include "ir/builder.hpp"
#include "runtime/gecko_runtime.hpp"
#include "sim/intermittent_sim.hpp"
#include "trace/invariants.hpp"
#include "trace/trace.hpp"

/**
 * @file
 * Property fuzzing: the crash-consistency guarantee must hold for
 * arbitrary programs, not just the curated workload suite.
 *
 * A deterministic generator builds structured random programs —
 * sequences of ALU blocks, memory traffic over a small window (plenty
 * of anti-dependences), counted and data-dependent loops, diamonds —
 * and every one is swept with hard power failures under Ratchet and
 * GECKO, comparing outputs and final memory against the failure-free
 * run.
 */

namespace gecko {
namespace {

using compiler::CompiledProgram;
using compiler::Scheme;

/** xorshift PRNG — deterministic across platforms. */
class Rng
{
  public:
    explicit Rng(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }

    /** Uniform in [0, n). */
    std::uint32_t pick(std::uint32_t n) { return next() % n; }

  private:
    std::uint32_t state_;
};

/**
 * Generate a structured random program.
 *
 * Registers r1..r9 are general data registers; r10/r11/r12 are reserved
 * as loop counters/bounds per nesting level, keeping every loop a
 * counted pattern the pipeline can bound.  Memory traffic stays inside
 * [100, 160), guaranteeing aliasing pressure.
 */
ir::Program
generate(std::uint32_t seed)
{
    // A nonzero GECKO_SEED reseeds the whole population (exp/rng.hpp);
    // the unseeded baseline keeps the historical programs.
    seed = static_cast<std::uint32_t>(exp::applyGlobalSeed(seed));
    Rng rng(seed);
    ir::ProgramBuilder b("fuzz" + std::to_string(seed));
    int label_counter = 0;
    auto fresh = [&](const char* hint) {
        std::ostringstream os;
        os << hint << "_" << label_counter++;
        return os.str();
    };

    b.movi(0, 0);
    // Seed data registers.
    for (ir::Reg r = 1; r <= 9; ++r)
        b.movi(r, static_cast<std::int32_t>(rng.pick(1000)));

    auto rand_data_reg = [&]() {
        return static_cast<ir::Reg>(1 + rng.pick(9));
    };

    auto emit_op = [&]() {
        ir::Reg rd = rand_data_reg();
        ir::Reg rs = rand_data_reg();
        switch (rng.pick(11)) {
          case 0:
            b.add(rd, rd, rs);
            break;
          case 1:
            b.sub(rd, rd, rs);
            break;
          case 2:
            b.muli(rd, rs, static_cast<std::int32_t>(rng.pick(7)) + 1);
            break;
          case 3:
            b.xor_(rd, rd, rs);
            break;
          case 4:
            b.shri(rd, rs, static_cast<std::int32_t>(rng.pick(5)));
            break;
          case 5:
            b.andi(rd, rs, 1023);
            break;
          case 6: {
            // Load from the shared window (base + bounded index).
            b.andi(13, rs, 63);
            b.addi(13, 13, 100);
            b.load(rd, 13, 0);
            break;
          }
          case 7: {
            // Store into the shared window: anti-dependence pressure.
            b.andi(13, rs, 63);
            b.addi(13, 13, 100);
            b.store(13, 0, rd);
            break;
          }
          case 9: {
            // I/O: exercises replay-consistent inputs and exactly-once
            // outputs under rollback.
            if (rng.pick(2))
                b.in(rd, 1);
            else
                b.out(0, rs);
            break;
          }
          case 8: {
            // Diamond on a data register.
            std::string t = fresh("then");
            std::string j = fresh("join");
            b.andi(13, rs, 1);
            b.beq(13, 0, t);
            b.addi(rd, rd, 3);
            b.jmp(j);
            b.label(t);
            b.subi(rd, rd, 5);
            b.label(j);
            break;
          }
          default:
            b.mov(rd, rs);
            break;
        }
    };

    // Top-level: a few segments, possibly wrapped in counted loops
    // (nesting depth ≤ 2 via counters r10/r11).
    int segments = 2 + static_cast<int>(rng.pick(3));
    for (int s = 0; s < segments; ++s) {
        int depth = static_cast<int>(rng.pick(3));  // 0, 1, or 2 levels
        std::string l0 = fresh("loop0"), l1 = fresh("loop1");
        if (depth >= 1) {
            b.movi(10, 0);
            b.movi(14, static_cast<std::int32_t>(2 + rng.pick(6)));
            b.label(l0);
        }
        if (depth >= 2) {
            b.movi(11, 0);
            b.movi(15, static_cast<std::int32_t>(2 + rng.pick(4)));
            b.label(l1);
        }
        int ops = 2 + static_cast<int>(rng.pick(6));
        for (int i = 0; i < ops; ++i)
            emit_op();
        if (depth >= 2) {
            b.addi(11, 11, 1);
            b.blt(11, 15, l1);
        }
        if (depth >= 1) {
            b.addi(10, 10, 1);
            b.blt(10, 14, l0);
        }
    }

    // Observable result: fold every data register into the output.
    b.movi(13, 0);
    for (ir::Reg r = 1; r <= 9; ++r)
        b.add(13, 13, r);
    b.out(0, 13);
    b.halt();
    return b.take();
}

struct RunResult {
    std::vector<std::uint32_t> out;
    std::vector<std::uint32_t> memory;
};

void
setupFuzzIo(sim::IoHub& io)
{
    io.setInput(1, std::make_shared<sim::FunctionInput>(
                       [](std::uint64_t i) -> std::uint32_t {
                           return static_cast<std::uint32_t>(
                               (i * 2654435761u) >> 16);
                       }));
}

RunResult
goldenRun(const CompiledProgram& compiled)
{
    sim::Nvm nvm(4096);
    sim::IoHub io;
    setupFuzzIo(io);
    sim::runToCompletion(compiled, nvm, io);
    return {io.output(0).values(), nvm.data()};
}

RunResult
failingRun(const CompiledProgram& compiled, std::uint64_t interval)
{
    sim::Nvm nvm(4096);
    sim::IoHub io;
    setupFuzzIo(io);
    sim::Machine machine(compiled, nvm, io);
    machine.setStagedIo(true);
    runtime::GeckoRuntime runtime(compiled, machine, nvm);
    runtime.onBoot();
    int failures = 30;
    std::uint64_t watchdog = 0;
    while (!machine.halted()) {
        std::uint64_t consumed = 0;
        sim::RunExit exit = machine.run(
            failures > 0 ? interval : 1u << 20, &consumed);
        if (exit == sim::RunExit::kHalted)
            break;
        if (failures-- > 0) {
            machine.powerCycle();
            runtime.onBoot();
        }
        if (++watchdog > 200'000)
            throw std::runtime_error("fuzz livelock");
    }
    return {io.output(0).values(), nvm.data()};
}

class FuzzTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FuzzTest, GeneratedProgramsSurvivePowerFailures)
{
    ir::Program prog = generate(GetParam());
    ASSERT_EQ(prog.validate(), "");

    for (Scheme scheme : {Scheme::kRatchet, Scheme::kGecko}) {
        CompiledProgram compiled = compiler::compile(prog, scheme);
        RunResult gold = goldenRun(compiled);
        for (std::uint64_t interval : {67u, 331u, 1009u}) {
            RunResult r = failingRun(compiled, interval);
            ASSERT_EQ(r.out, gold.out)
                << "seed " << GetParam() << " scheme "
                << compiler::schemeName(scheme) << " interval "
                << interval;
            ASSERT_EQ(r.memory, gold.memory)
                << "seed " << GetParam() << " scheme "
                << compiler::schemeName(scheme) << " interval "
                << interval;
        }
    }
}

TEST_P(FuzzTest, InstrumentationPreservesSemantics)
{
    ir::Program prog = generate(GetParam() ^ 0xbeef);
    ASSERT_EQ(prog.validate(), "");
    RunResult nvp =
        goldenRun(compiler::compile(prog, Scheme::kNvp));
    RunResult gecko =
        goldenRun(compiler::compile(prog, Scheme::kGecko));
    RunResult ratchet =
        goldenRun(compiler::compile(prog, Scheme::kRatchet));
    EXPECT_EQ(nvp.out, gecko.out) << "seed " << GetParam();
    EXPECT_EQ(nvp.out, ratchet.out) << "seed " << GetParam();
    EXPECT_EQ(nvp.memory, gecko.memory) << "seed " << GetParam();
}

TEST_P(FuzzTest, TraceInvariantsHoldUnderPowerFailures)
{
    if (!trace::compiledIn())
        GTEST_SKIP() << "tracing compiled out (GECKO_TRACE=0)";

    ir::Program prog = generate(GetParam());
    ASSERT_EQ(prog.validate(), "");

    for (Scheme scheme : {Scheme::kRatchet, Scheme::kGecko}) {
        CompiledProgram compiled = compiler::compile(prog, scheme);
        trace::Buffer buffer;
        {
            trace::BufferScope scope(&buffer);
            failingRun(compiled, 331);
        }
        std::vector<trace::Event> events = buffer.events();
        ASSERT_FALSE(events.empty())
            << "seed " << GetParam() << " scheme "
            << compiler::schemeName(scheme)
            << ": power-failure run produced no trace events";
        std::vector<std::string> violations =
            trace::checkInvariants(events);
        EXPECT_TRUE(violations.empty())
            << "seed " << GetParam() << " scheme "
            << compiler::schemeName(scheme) << ": "
            << (violations.empty() ? "" : violations.front())
            << " (" << violations.size() << " violations, "
            << events.size() << " events)";

        // Tracing itself is deterministic: the identical run traces to
        // the identical event stream.
        trace::Buffer again;
        {
            trace::BufferScope scope(&again);
            failingRun(compiled, 331);
        }
        EXPECT_TRUE(again.events() == events)
            << "seed " << GetParam() << " scheme "
            << compiler::schemeName(scheme)
            << ": re-run traced differently";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(1u, 121u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Three-way execution-tier differential: the step, fast, and block
// backends must be observationally indistinguishable under hostile
// environments — random EMI attack schedules and every fault injector —
// down to the trace stream.
// ---------------------------------------------------------------------

/** Everything observable about one intermittent run. */
struct TierObservation {
    sim::ExecStats stats;
    std::array<std::uint32_t, 16> regs{};
    std::vector<std::uint32_t> out;
    std::vector<std::uint32_t> memory;
    std::vector<trace::Event> events;
};

/**
 * Run the attacked sensor loop once under `backend`.  Every attack
 * parameter derives from the seed in a fixed order before anything is
 * constructed, so each tier sees the identical environment.
 */
TierObservation
runEmiTier(std::uint32_t seed, sim::ExecBackend backend)
{
    Rng rng(seed);
    double freqHz = 1e6 * (1 + rng.pick(300));
    double powerDbm = 25.0 + rng.pick(16);
    std::vector<attack::AttackWindow> windows;
    double t = 0.001 * (1 + rng.pick(4));
    int nWindows = 2 + static_cast<int>(rng.pick(3));
    for (int i = 0; i < nWindows; ++i) {
        double on = 0.001 * (1 + rng.pick(5));
        windows.push_back({t, t + on, freqHz, powerDbm});
        t += on + 0.001 * (1 + rng.pick(4));
    }

    static const CompiledProgram compiled = compiler::compile(
        workloads::build("sensor_loop"), Scheme::kGecko);
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 4096;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.monitorSeed = seed;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;

    sim::IoHub io;
    workloads::setupIo("sensor_loop", io);
    energy::ConstantHarvester supply(3.3, 5.0);
    sim::IntermittentSim simulation(compiled, dev, cfg, supply, io);
    simulation.machine().setExecBackend(backend);
    attack::RemoteRig rig(dev, cfg.monitorKind, 0.5);
    attack::EmiSource source(rig, freqHz, powerDbm);
    attack::AttackSchedule schedule(std::move(windows));
    simulation.setEmiSource(&source);
    simulation.setAttackSchedule(&schedule);

    TierObservation obs;
    {
        trace::Buffer buffer;
        trace::BufferScope scope(&buffer);
        simulation.run(0.02);
        obs.events = buffer.events();
    }
    obs.stats = simulation.machine().stats;
    obs.regs = simulation.machine().regs();
    obs.out = io.output(0).values();
    obs.memory = simulation.nvm().data();
    return obs;
}

class BackendFuzzTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BackendFuzzTest, RandomEmiSchedulesAgreeAcrossTiers)
{
    auto seed = static_cast<std::uint32_t>(
        exp::applyGlobalSeed(GetParam()));
    TierObservation ref = runEmiTier(seed, sim::ExecBackend::kStep);
    ASSERT_GT(ref.stats.cycles, 0u);
    for (sim::ExecBackend backend :
         {sim::ExecBackend::kFast, sim::ExecBackend::kBlock}) {
        TierObservation obs = runEmiTier(seed, backend);
        const char* name = sim::execBackendName(backend);
        EXPECT_TRUE(obs.stats == ref.stats)
            << name << " diverged in ExecStats (seed " << seed << ")";
        EXPECT_EQ(obs.regs, ref.regs) << name << " seed " << seed;
        EXPECT_EQ(obs.out, ref.out) << name << " seed " << seed;
        EXPECT_EQ(obs.memory, ref.memory) << name << " seed " << seed;
        EXPECT_TRUE(obs.events == ref.events)
            << name << " diverged in the trace stream (seed " << seed
            << ": " << obs.events.size() << " vs " << ref.events.size()
            << " events)";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzzTest,
                         ::testing::Range(1u, 9u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Snapshot-mid-run differential: serializing the full simulator state
// between quanta, tearing the world down, and restoring into a freshly
// built environment must be observationally invisible — same stats,
// registers, outputs, NVM image, and trace stream as the uninterrupted
// sliced run, for random EMI schedules under every backend.
// ---------------------------------------------------------------------

/** One fully-owned attacked-run environment (rebuilt for restores). */
struct EmiEnv {
    sim::IoHub io;
    std::unique_ptr<energy::ConstantHarvester> supply;
    std::unique_ptr<sim::IntermittentSim> simulation;
    std::unique_ptr<attack::RemoteRig> rig;
    std::unique_ptr<attack::EmiSource> source;
    std::unique_ptr<attack::AttackSchedule> schedule;
};

/** Deterministic (seed-derived) rebuild; identical every call. */
void
buildEmiEnv(EmiEnv& env, std::uint32_t seed, sim::ExecBackend backend)
{
    Rng rng(seed);
    double freqHz = 1e6 * (1 + rng.pick(300));
    double powerDbm = 25.0 + rng.pick(16);
    std::vector<attack::AttackWindow> windows;
    double t = 0.001 * (1 + rng.pick(4));
    int nWindows = 2 + static_cast<int>(rng.pick(3));
    for (int i = 0; i < nWindows; ++i) {
        double on = 0.001 * (1 + rng.pick(5));
        windows.push_back({t, t + on, freqHz, powerDbm});
        t += on + 0.001 * (1 + rng.pick(4));
    }

    static const CompiledProgram compiled = compiler::compile(
        workloads::build("sensor_loop"), Scheme::kGecko);
    const auto& dev = device::DeviceDb::msp430fr5994();
    sim::SimConfig cfg;
    cfg.continuous = true;
    cfg.memWords = 4096;
    cfg.jitRamWords = 4;
    cfg.bootOverheadCycles = 1000;
    cfg.monitorSeed = seed;
    cfg.cap.capacitanceF = 20e-6;
    cfg.cap.initialV = 3.3;

    workloads::setupIo("sensor_loop", env.io);
    env.supply = std::make_unique<energy::ConstantHarvester>(3.3, 5.0);
    env.simulation = std::make_unique<sim::IntermittentSim>(
        compiled, dev, cfg, *env.supply, env.io);
    env.simulation->machine().setExecBackend(backend);
    env.rig = std::make_unique<attack::RemoteRig>(dev, cfg.monitorKind, 0.5);
    env.source =
        std::make_unique<attack::EmiSource>(*env.rig, freqHz, powerDbm);
    env.schedule =
        std::make_unique<attack::AttackSchedule>(std::move(windows));
    env.simulation->setEmiSource(env.source.get());
    env.simulation->setAttackSchedule(env.schedule.get());
}

/**
 * Run the attacked workload as 4 x 5ms slices; at `snapshotAt` (1-3, or
 * -1 for never) serialize, destroy everything, rebuild, restore, and
 * finish.  Slicing is identical in both modes so the quantum plan —
 * and therefore the trajectory — matches exactly.
 */
TierObservation
runEmiSliced(std::uint32_t seed, sim::ExecBackend backend, int snapshotAt)
{
    auto env = std::make_unique<EmiEnv>();
    buildEmiEnv(*env, seed, backend);
    auto buffer = std::make_unique<trace::Buffer>();
    auto scope = std::make_unique<trace::BufferScope>(buffer.get());
    for (int k = 0; k < 4; ++k) {
        env->simulation->run(0.005);
        if (k + 1 == snapshotAt) {
            std::vector<std::uint8_t> blob = campaign::saveSimSnapshot(
                *env->simulation, env->io, buffer.get());
            scope.reset();
            buffer.reset();
            env = std::make_unique<EmiEnv>();
            buildEmiEnv(*env, seed, backend);
            buffer = std::make_unique<trace::Buffer>();
            campaign::restoreSimSnapshot(*env->simulation, env->io, blob,
                                         buffer.get());
            scope = std::make_unique<trace::BufferScope>(buffer.get());
        }
    }
    TierObservation obs;
    obs.events = buffer->events();
    scope.reset();
    obs.stats = env->simulation->machine().stats;
    obs.regs = env->simulation->machine().regs();
    obs.out = env->io.output(0).values();
    obs.memory = env->simulation->nvm().data();
    return obs;
}

class SnapshotFuzzTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(SnapshotFuzzTest, MidRunSnapshotRestoreIsInvisible)
{
    auto seed = static_cast<std::uint32_t>(
        exp::applyGlobalSeed(GetParam()));
    for (sim::ExecBackend backend :
         {sim::ExecBackend::kStep, sim::ExecBackend::kFast,
          sim::ExecBackend::kBlock}) {
        const char* name = sim::execBackendName(backend);
        TierObservation ref = runEmiSliced(seed, backend, -1);
        ASSERT_GT(ref.stats.cycles, 0u) << name << " seed " << seed;
        for (int at : {1, 2, 3}) {
            TierObservation obs = runEmiSliced(seed, backend, at);
            EXPECT_TRUE(obs.stats == ref.stats)
                << name << " snapshot@" << at
                << " diverged in ExecStats (seed " << seed << ")";
            EXPECT_EQ(obs.regs, ref.regs)
                << name << "@" << at << " seed " << seed;
            EXPECT_EQ(obs.out, ref.out)
                << name << "@" << at << " seed " << seed;
            EXPECT_EQ(obs.memory, ref.memory)
                << name << "@" << at << " seed " << seed;
            EXPECT_TRUE(obs.events == ref.events)
                << name << " snapshot@" << at
                << " diverged in the trace stream (seed " << seed << ": "
                << obs.events.size() << " vs " << ref.events.size()
                << " events)";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzzTest,
                         ::testing::Range(1u, 9u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

TEST(BackendFaultDifferentialTest, AllInjectorsAgreeAcrossTiers)
{
    // Every injector class, replayed bit-identically per tier: the
    // CaseResult (outcome, injection coordinates, defence counters) and
    // the victim's trace stream must not depend on the dispatch
    // strategy.
    using fault::CaseResult;
    using fault::CaseSpec;
    using fault::InjectorKind;
    const InjectorKind kinds[] = {
        InjectorKind::kBitFlip,      InjectorKind::kMultiBitFlip,
        InjectorKind::kTornWrite,    InjectorKind::kAckCorrupt,
        InjectorKind::kStaleImage,   InjectorKind::kMonitorStuck,
        InjectorKind::kMonitorOffset, InjectorKind::kBrownoutBurst,
        InjectorKind::kEmiBurst,      InjectorKind::kInstrSkip,
        InjectorKind::kOpcodeCorrupt, InjectorKind::kOperandFlip,
    };
    for (InjectorKind kind : kinds) {
        for (Scheme scheme : {Scheme::kNvp, Scheme::kGecko}) {
            CaseSpec spec;
            spec.injector = kind;
            spec.scheme = scheme;
            spec.workload =
                fault::isSimLevel(kind) ? "sensor_loop" : "crc16";
            spec.seed = exp::applyGlobalSeed(
                exp::mixSeed(0xd1ffu, static_cast<std::uint64_t>(kind)));

            // Warm the golden-oracle cache outside any trace buffer so
            // the first tier doesn't record the oracle's own events.
            fault::runCase(spec, 0.5, 0, sim::ExecBackend::kFast);

            CaseResult ref;
            std::vector<trace::Event> refEvents;
            bool first = true;
            for (sim::ExecBackend backend :
                 {sim::ExecBackend::kStep, sim::ExecBackend::kFast,
                  sim::ExecBackend::kBlock}) {
                trace::Buffer buffer;
                CaseResult r;
                {
                    trace::BufferScope scope(&buffer);
                    r = fault::runCase(spec, 0.5, 0, backend);
                }
                if (first) {
                    ref = r;
                    refEvents = buffer.events();
                    first = false;
                    continue;
                }
                const char* name = sim::execBackendName(backend);
                const char* inj = fault::injectorName(kind);
                EXPECT_EQ(r.outcome, ref.outcome) << inj << " " << name;
                EXPECT_EQ(r.detail, ref.detail) << inj << " " << name;
                EXPECT_EQ(r.injectAt, ref.injectAt) << inj << " " << name;
                EXPECT_EQ(r.word, ref.word) << inj << " " << name;
                EXPECT_EQ(r.corruptedRestores, ref.corruptedRestores)
                    << inj << " " << name;
                EXPECT_EQ(r.crcRejects, ref.crcRejects)
                    << inj << " " << name;
                EXPECT_EQ(r.slotRepairs, ref.slotRepairs)
                    << inj << " " << name;
                EXPECT_EQ(r.ckptSaveRetries, ref.ckptSaveRetries)
                    << inj << " " << name;
                EXPECT_EQ(r.retriesExhausted, ref.retriesExhausted)
                    << inj << " " << name;
                EXPECT_EQ(r.defenseEscalations, ref.defenseEscalations)
                    << inj << " " << name;
                EXPECT_EQ(r.defended, ref.defended) << inj << " " << name;
                EXPECT_TRUE(buffer.events() == refEvents)
                    << inj << " " << name
                    << " diverged in the trace stream ("
                    << buffer.events().size() << " vs "
                    << refEvents.size() << " events)";
            }
        }
    }
}

}  // namespace
}  // namespace gecko
